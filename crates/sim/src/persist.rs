//! Canonical state serialization for checkpoint/restore.
//!
//! Every piece of live run state implements [`Persist`]: a deterministic,
//! versioned, canonical **binary** encoding with the same discipline the
//! telemetry registry applies to its JSON — two identical simulation
//! states always produce identical bytes, regardless of how the state was
//! reached (single-threaded or sharded execution, fresh run or a chain of
//! restores). No serde: the format is little-endian, length-prefixed, and
//! hand-rolled so the bytes are a pure function of the state.
//!
//! Restoration is **in-place**: the caller rebuilds the identical
//! topology from its scenario description (fresh structure, same
//! registration order, same static config) and then applies the dynamic
//! state via [`Persist::restore`]. This keeps structural configuration
//! (wiring tables, driver boxes, programs) out of the checkpoint, which
//! is what makes the format shard-agnostic: a snapshot taken under a
//! 4-shard harness restores into a 1-, 2- or 8-shard rebuild of the same
//! topology, because nodes are encoded in global registration order and
//! nothing in the bytes mentions a shard.
//!
//! Conventions, in the spirit of the canonical-JSON rules:
//!
//! * integers are fixed-width little-endian; `f64` travels as its IEEE
//!   bit pattern ([`f64::to_bits`]) so round-trips are exact,
//! * sequences carry a `u32` length prefix,
//! * maps are emitted in ascending key order (callers sort `HashMap`s),
//! * optional values carry a one-byte presence tag,
//! * enums carry a one-byte discriminant tag, checked on decode.
//!
//! Versioning lives at the **container** level: the checkpoint header
//! (magic + format version, written by `ctms-core`) gates the whole
//! byte stream, so individual `Persist` impls stay tag-free and dense.
//! Any change to any impl's field set is a format change and must bump
//! the container version. Since container version 2 the header is
//! followed by a **topology signature** — a canonical byte description
//! of the graph shape, station layout and host placement, derived from
//! the (shard-agnostic) router slot table — so restoring a snapshot
//! into a differently-shaped rebuild fails with a readable error
//! before any dynamic state is touched. The signature describes the
//! topology, never the shard count: the shard-agnostic restore
//! property above is unchanged.

use crate::time::{Dur, SimTime};

/// Why a restore failed. Restores never panic on malformed bytes; they
/// return one of these so service-mode callers (`ctms-serve`) can reject
/// a bad checkpoint and keep running.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// The byte stream ended before the value was complete.
    UnexpectedEof,
    /// A one-byte discriminant had no matching variant.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The unrecognized tag byte.
        tag: u8,
    },
    /// The checkpoint does not fit the rebuilt topology (wrong node
    /// count, mismatched driver name, wrong magic/version, …).
    Mismatch(String),
    /// Bytes remained after the last value was decoded.
    TrailingBytes(usize),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// The underlying `io::Read`/`io::Write` of a streamed checkpoint
    /// failed (carried as the error's display text so the variant stays
    /// comparable; an unexpected-EOF io error maps to
    /// [`PersistError::UnexpectedEof`] instead).
    Io(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::UnexpectedEof => write!(f, "checkpoint truncated"),
            PersistError::BadTag { what, tag } => {
                write!(f, "unknown tag {tag:#04x} decoding {what}")
            }
            PersistError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
            PersistError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after checkpoint payload")
            }
            PersistError::BadUtf8 => write!(f, "invalid UTF-8 in checkpoint string"),
            PersistError::Io(e) => write!(f, "checkpoint stream io error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            PersistError::UnexpectedEof
        } else {
            PersistError::Io(e.to_string())
        }
    }
}

impl PersistError {
    /// A [`PersistError::Mismatch`] from anything displayable.
    pub fn mismatch(msg: impl Into<String>) -> Self {
        PersistError::Mismatch(msg.into())
    }
}

/// The canonical binary encoder: an append-only byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes, borrowed (for copy-out reuse of the encoder).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Discards the contents but keeps the allocation, so a scratch
    /// encoder can be reused without reallocating.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64` (two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.seq_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with a length prefix.
    pub fn bytes(&mut self, b: &[u8]) {
        self.seq_len(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Appends a sequence length prefix (`u32`; panics past 4 GiB of
    /// elements, far beyond any simulation state).
    pub fn seq_len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("sequence too long for checkpoint"));
    }

    /// Appends a `SimTime` as raw nanoseconds.
    pub fn time(&mut self, t: SimTime) {
        self.u64(t.as_ns());
    }

    /// Appends a `Dur` as raw nanoseconds.
    pub fn dur(&mut self, d: Dur) {
        self.u64(d.as_ns());
    }

    /// Appends an optional value: a presence byte, then the value.
    pub fn opt<T>(&mut self, v: Option<&T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
            None => self.u8(0),
        }
    }
}

/// The canonical binary decoder: a cursor over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Verifies every byte was consumed.
    pub fn finish(self) -> Result<(), PersistError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PersistError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool; any byte other than 0 or 1 is a bad tag.
    pub fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(PersistError::BadTag { what: "bool", tag }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, PersistError> {
        let n = self.seq_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::BadUtf8)
    }

    /// Reads length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>, PersistError> {
        let n = self.seq_len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a sequence length prefix, bounded by the remaining byte
    /// count so a corrupt length can never trigger a huge allocation.
    pub fn seq_len(&mut self) -> Result<usize, PersistError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(PersistError::UnexpectedEof);
        }
        Ok(n)
    }

    /// Reads a `SimTime` from raw nanoseconds.
    pub fn time(&mut self) -> Result<SimTime, PersistError> {
        Ok(SimTime::from_ns(self.u64()?))
    }

    /// Reads a `Dur` from raw nanoseconds.
    pub fn dur(&mut self) -> Result<Dur, PersistError> {
        Ok(Dur::from_ns(self.u64()?))
    }

    /// Reads an optional value.
    pub fn opt<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, PersistError>,
    ) -> Result<Option<T>, PersistError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            tag => Err(PersistError::BadTag {
                what: "option",
                tag,
            }),
        }
    }

    /// Reads a sequence: the length prefix, then `n` elements through `f`.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, PersistError>,
    ) -> Result<Vec<T>, PersistError> {
        let n = self.seq_len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(f(self)?);
        }
        Ok(v)
    }
}

/// Deterministic, canonical state serialization.
///
/// `persist` appends this value's **dynamic** state to the encoder;
/// `restore` applies previously persisted state onto an equivalently
/// *rebuilt* value (same static configuration, fresh dynamic state).
/// Static configuration is deliberately not encoded — the caller is
/// responsible for rebuilding the identical structure before restoring,
/// and impls verify cheap invariants (counts, names) where they can.
pub trait Persist {
    /// Appends this value's canonical state bytes.
    fn persist(&self, enc: &mut Enc);

    /// Applies previously persisted state onto this rebuilt value.
    fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError>;
}

/// Decodes a fresh value through its [`Persist::restore`], starting from
/// [`Default`]. The bridge between in-place restoration and containers
/// (queues, options) that are rebuilt element-by-element.
pub fn decode_new<T: Persist + Default>(dec: &mut Dec<'_>) -> Result<T, PersistError> {
    let mut v = T::default();
    v.restore(dec)?;
    Ok(v)
}

/// Speculative-execution snapshots: the optimistic sharded scheduler
/// saves a value's state before speculating past a conservative bound
/// and rolls it back when a cross-shard straggler invalidates the
/// speculation.
///
/// Unlike [`Persist`], whose bytes form a durable cross-process
/// checkpoint, a `Rollback` image only ever round-trips within one
/// process run — so implementations may use **truncation marks** (record
/// the lengths of append-only logs and truncate on rollback) instead of
/// copying the data itself, keeping snapshot cost proportional to the
/// state *mutated* since the save rather than the state accumulated over
/// the whole run. Every [`Persist`] type gets `Rollback` for free via
/// the blanket impl (a full canonical image is always a valid rollback
/// image).
pub trait Rollback {
    /// Appends a rollback image of this value's current state.
    fn save(&self, enc: &mut Enc);

    /// Restores this value to the state captured by a matching `save`.
    fn rollback(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError>;
}

impl<T: Persist> Rollback for T {
    fn save(&self, enc: &mut Enc) {
        self.persist(enc);
    }
    fn rollback(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError> {
        self.restore(dec)
    }
}

impl Persist for SimTime {
    fn persist(&self, enc: &mut Enc) {
        enc.time(*self);
    }
    fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError> {
        *self = dec.time()?;
        Ok(())
    }
}

impl Persist for Dur {
    fn persist(&self, enc: &mut Enc) {
        enc.dur(*self);
    }
    fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError> {
        *self = dec.dur()?;
        Ok(())
    }
}

macro_rules! persist_int {
    ($ty:ty, $write:ident, $read:ident) => {
        impl Persist for $ty {
            fn persist(&self, enc: &mut Enc) {
                enc.$write(*self);
            }
            fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError> {
                *self = dec.$read()?;
                Ok(())
            }
        }
    };
}

persist_int!(u8, u8, u8);
persist_int!(u16, u16, u16);
persist_int!(u32, u32, u32);
persist_int!(u64, u64, u64);
persist_int!(i64, i64, i64);
persist_int!(f64, f64, f64);
persist_int!(bool, bool, bool);

impl Persist for String {
    fn persist(&self, enc: &mut Enc) {
        enc.str(self);
    }
    fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError> {
        *self = dec.str()?;
        Ok(())
    }
}

// --- Streaming (chunked) encoding ----------------------------------------
//
// A monolithic checkpoint of a 10^4-ring topology is hundreds of
// megabytes; materializing it in one `Vec` (and a second copy for hex
// transport) defeats the point of running the topology in bounded
// memory. The chunked writer/reader below stream the *identical* byte
// sequence through a fixed-size buffer:
//
// * the payload bytes are exactly the monolithic encoding — chunking is
//   pure transport framing, so concatenating the chunk payloads yields
//   the monolithic checkpoint byte for byte;
// * the writer cuts chunks only at *decode-unit* boundaries (header,
//   whole nodes, telemetry, router parts), so the reader can decode
//   each chunk with an ordinary in-memory [`Dec`] and never needs to
//   resume a value mid-field;
// * the standard transport framing ([`FramedWrite`]/[`ChunkedReader`])
//   is `u32` LE payload length + payload per chunk, terminated by a
//   zero length and the `u64` total payload byte count as an integrity
//   check. Other transports (e.g. `ctms-serve`'s hex-per-line protocol)
//   implement [`ChunkSink`] directly and frame chunks their own way.

/// Default chunk-buffer capacity for streamed checkpoints: large enough
/// to amortize per-chunk costs, small enough that peak streaming memory
/// stays far below the snapshot size.
pub const STREAM_CHUNK: usize = 64 * 1024;

/// Receives the consecutive payload chunks of a streamed encoding.
/// Concatenating every `chunk` payload reproduces the monolithic
/// encoding exactly.
pub trait ChunkSink {
    /// One payload chunk, in stream order. Never empty.
    fn chunk(&mut self, bytes: &[u8]) -> Result<(), PersistError>;

    /// Stream complete; `payload` is the total payload byte count.
    fn finish(&mut self, payload: u64) -> Result<(), PersistError> {
        let _ = payload;
        Ok(())
    }
}

/// The standard length-prefixed chunk framing over any [`std::io::Write`]:
/// each chunk travels as a `u32` LE payload length followed by the
/// payload; the stream ends with a zero length and the `u64` total
/// payload byte count.
pub struct FramedWrite<'a> {
    out: &'a mut dyn std::io::Write,
}

impl<'a> FramedWrite<'a> {
    /// A framing sink over `out`.
    pub fn new(out: &'a mut dyn std::io::Write) -> Self {
        FramedWrite { out }
    }
}

impl ChunkSink for FramedWrite<'_> {
    fn chunk(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        debug_assert!(
            !bytes.is_empty(),
            "empty chunks are reserved for the terminator"
        );
        self.out.write_all(&(bytes.len() as u32).to_le_bytes())?;
        self.out.write_all(bytes)?;
        Ok(())
    }

    fn finish(&mut self, payload: u64) -> Result<(), PersistError> {
        self.out.write_all(&0u32.to_le_bytes())?;
        self.out.write_all(&payload.to_le_bytes())?;
        self.out.flush()?;
        Ok(())
    }
}

/// Streams a canonical encoding through a bounded buffer into a
/// [`ChunkSink`]. Producers append through [`enc`](ChunkedWriter::enc)
/// exactly as they would for a monolithic encode, and call
/// [`unit`](ChunkedWriter::unit) after each self-contained decode unit
/// (a whole node, the header, the telemetry block); the writer emits
/// the buffer as a chunk whenever a unit boundary finds it at or past
/// capacity, so peak memory is one chunk plus the largest single unit.
pub struct ChunkedWriter<'a> {
    sink: &'a mut dyn ChunkSink,
    buf: Enc,
    cap: usize,
    payload: u64,
    chunks: u64,
}

impl<'a> ChunkedWriter<'a> {
    /// A writer with the default [`STREAM_CHUNK`] capacity.
    pub fn new(sink: &'a mut dyn ChunkSink) -> Self {
        ChunkedWriter::with_cap(sink, STREAM_CHUNK)
    }

    /// A writer with an explicit chunk-buffer capacity (tiny capacities
    /// are useful in tests: every unit becomes its own chunk).
    pub fn with_cap(sink: &'a mut dyn ChunkSink, cap: usize) -> Self {
        ChunkedWriter {
            sink,
            buf: Enc::new(),
            cap: cap.max(1),
            payload: 0,
            chunks: 0,
        }
    }

    /// The encoder to append the next decode unit to.
    pub fn enc(&mut self) -> &mut Enc {
        &mut self.buf
    }

    /// Marks a decode-unit boundary: flushes the buffer as a chunk if
    /// it has reached capacity.
    pub fn unit(&mut self) -> Result<(), PersistError> {
        if self.buf.len() >= self.cap {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Emits the buffered bytes as one chunk (no-op on an empty
    /// buffer). Producers call this to force a framing boundary the
    /// reader can rely on — e.g. after the header, after the last node.
    pub fn flush_chunk(&mut self) -> Result<(), PersistError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.sink.chunk(self.buf.as_bytes())?;
        self.payload += self.buf.len() as u64;
        self.chunks += 1;
        self.buf.clear();
        Ok(())
    }

    /// Flushes the final chunk and the terminator; returns
    /// `(payload_bytes, chunks)`.
    pub fn finish(mut self) -> Result<(u64, u64), PersistError> {
        self.flush_chunk()?;
        self.sink.finish(self.payload)?;
        Ok((self.payload, self.chunks))
    }
}

/// Reads a stream produced through [`FramedWrite`], one chunk at a
/// time, verifying the terminator's total byte count.
pub struct ChunkedReader<'a> {
    inp: &'a mut dyn std::io::Read,
    payload: u64,
    done: bool,
}

impl<'a> ChunkedReader<'a> {
    /// A reader over `inp`, positioned at the first chunk's length.
    pub fn new(inp: &'a mut dyn std::io::Read) -> Self {
        ChunkedReader {
            inp,
            payload: 0,
            done: false,
        }
    }

    /// Reads the next chunk's payload into `buf` (contents replaced).
    /// `Ok(false)` at the verified terminator (with `buf` emptied); a
    /// stream truncated mid-chunk or mid-prefix surfaces as
    /// [`PersistError::UnexpectedEof`], never a panic.
    pub fn next_chunk_into(&mut self, buf: &mut Vec<u8>) -> Result<bool, PersistError> {
        if self.done {
            buf.clear();
            return Ok(false);
        }
        let mut len4 = [0u8; 4];
        self.inp.read_exact(&mut len4)?;
        let n = u32::from_le_bytes(len4) as usize;
        if n == 0 {
            let mut len8 = [0u8; 8];
            self.inp.read_exact(&mut len8)?;
            let total = u64::from_le_bytes(len8);
            if total != self.payload {
                return Err(PersistError::mismatch(format!(
                    "stream terminator claims {total} payload bytes, read {}",
                    self.payload
                )));
            }
            self.done = true;
            buf.clear();
            return Ok(false);
        }
        buf.resize(n, 0);
        self.inp.read_exact(buf)?;
        self.payload += n as u64;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(5_000);
        e.u32(70_000);
        e.u64(u64::MAX - 3);
        e.i64(-42);
        e.f64(1.5e-3);
        e.bool(true);
        e.str("kern-tx");
        e.time(SimTime::from_ms(12));
        e.dur(Dur::from_us(440));
        e.opt(Some(&9u64), |e, v| e.u64(*v));
        e.opt::<u64>(None, |e, v| e.u64(*v));
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 5_000);
        assert_eq!(d.u32().unwrap(), 70_000);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap(), 1.5e-3);
        assert!(d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "kern-tx");
        assert_eq!(d.time().unwrap(), SimTime::from_ms(12));
        assert_eq!(d.dur().unwrap(), Dur::from_us(440));
        assert_eq!(d.opt(|d| d.u64()).unwrap(), Some(9));
        assert_eq!(d.opt(|d| d.u64()).unwrap(), None);
        d.finish().unwrap();
    }

    #[test]
    fn f64_round_trips_exactly() {
        for v in [0.0, -0.0, 1.0 / 3.0, f64::NAN, f64::INFINITY, 2.5e-308] {
            let mut e = Enc::new();
            e.f64(v);
            let b = e.into_bytes();
            let got = Dec::new(&b).f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut e = Enc::new();
        e.u64(1234);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..5]);
        assert_eq!(d.u64(), Err(PersistError::UnexpectedEof));
    }

    #[test]
    fn corrupt_sequence_length_cannot_overallocate() {
        let mut e = Enc::new();
        e.u32(u32::MAX); // claims 4 billion elements, provides none
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.seq(|d| d.u8()), Err(PersistError::UnexpectedEof));
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let mut e = Enc::new();
        e.u8(1);
        e.u8(2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let _ = d.u8().unwrap();
        assert_eq!(d.finish(), Err(PersistError::TrailingBytes(1)));
    }

    #[test]
    fn bad_tags_name_the_site() {
        let bytes = [9u8];
        assert_eq!(
            Dec::new(&bytes).bool(),
            Err(PersistError::BadTag {
                what: "bool",
                tag: 9
            })
        );
        let msg = PersistError::BadTag {
            what: "option",
            tag: 3,
        }
        .to_string();
        assert!(msg.contains("option") && msg.contains("0x03"), "{msg}");
    }

    #[test]
    fn persist_trait_round_trips_in_place() {
        let src = 0x1234_5678_9ABC_DEF0u64;
        let mut e = Enc::new();
        src.persist(&mut e);
        let bytes = e.into_bytes();
        let mut dst = 0u64;
        let mut d = Dec::new(&bytes);
        dst.restore(&mut d).unwrap();
        assert_eq!(dst, src);
        d.finish().unwrap();
    }

    #[test]
    fn sequences_round_trip() {
        let xs = vec![3u64, 1, 4, 1, 5];
        let mut e = Enc::new();
        e.seq_len(xs.len());
        for x in &xs {
            e.u64(*x);
        }
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.seq(|d| d.u64()).unwrap(), xs);
        d.finish().unwrap();
    }

    /// Streams `units` through a ChunkedWriter at `cap`, returning the
    /// framed bytes.
    fn stream_units(units: &[&[u8]], cap: usize) -> Vec<u8> {
        let mut out = Vec::new();
        let mut sink = FramedWrite::new(&mut out);
        let mut w = ChunkedWriter::with_cap(&mut sink, cap);
        for u in units {
            w.enc().buf.extend_from_slice(u);
            w.unit().unwrap();
        }
        w.finish().unwrap();
        out
    }

    #[test]
    fn chunk_payloads_concatenate_to_the_monolithic_bytes() {
        let units: Vec<Vec<u8>> = (0u8..20).map(|i| vec![i; 7]).collect();
        let unit_refs: Vec<&[u8]> = units.iter().map(|u| u.as_slice()).collect();
        let monolithic: Vec<u8> = units.concat();
        for cap in [1, 5, 16, 1024] {
            let framed = stream_units(&unit_refs, cap);
            let mut inp = framed.as_slice();
            let mut r = ChunkedReader::new(&mut inp);
            let mut buf = Vec::new();
            let mut concat = Vec::new();
            let mut chunks = 0;
            while r.next_chunk_into(&mut buf).unwrap() {
                assert!(!buf.is_empty());
                concat.extend_from_slice(&buf);
                chunks += 1;
            }
            assert_eq!(concat, monolithic, "cap {cap}");
            // Cap 1 forces one chunk per unit; large caps batch them.
            if cap == 1 {
                assert_eq!(chunks, units.len());
            }
            if cap == 1024 {
                assert_eq!(chunks, 1);
            }
            // The reader is idempotent past the terminator.
            assert!(!r.next_chunk_into(&mut buf).unwrap());
        }
    }

    #[test]
    fn units_are_never_split_across_chunks() {
        // Units larger than the cap still travel whole: the writer cuts
        // only at unit boundaries.
        let big = vec![0xABu8; 100];
        let framed = stream_units(&[&big, &[1, 2], &big], 16);
        let mut inp = framed.as_slice();
        let mut r = ChunkedReader::new(&mut inp);
        let mut buf = Vec::new();
        assert!(r.next_chunk_into(&mut buf).unwrap());
        assert_eq!(buf, big);
        assert!(r.next_chunk_into(&mut buf).unwrap());
        // The small unit was below cap at its boundary, so it merged
        // with the following unit's bytes... (cap 16 < 2+100: flushes
        // after appending `big`). Actual framing: [big][2+big].
        assert_eq!(buf.len(), 102);
        assert!(!r.next_chunk_into(&mut buf).unwrap());
    }

    #[test]
    fn truncated_stream_is_a_typed_error_not_a_panic() {
        let unit = vec![7u8; 50];
        let framed = stream_units(&[&unit], 16);
        // Truncate inside the chunk payload, inside the length prefix,
        // and inside the terminator — every cut is UnexpectedEof.
        for cut in [2, 10, framed.len() - 3] {
            let mut inp = &framed[..cut];
            let mut r = ChunkedReader::new(&mut inp);
            let mut buf = Vec::new();
            let err = loop {
                match r.next_chunk_into(&mut buf) {
                    Ok(true) => continue,
                    Ok(false) => panic!("truncated stream at {cut} decoded cleanly"),
                    Err(e) => break e,
                }
            };
            assert_eq!(err, PersistError::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_terminator_total_is_rejected() {
        let unit = vec![7u8; 8];
        let mut framed = stream_units(&[&unit], 1024);
        let n = framed.len();
        framed[n - 8..].copy_from_slice(&999u64.to_le_bytes());
        let mut inp = framed.as_slice();
        let mut r = ChunkedReader::new(&mut inp);
        let mut buf = Vec::new();
        assert!(r.next_chunk_into(&mut buf).unwrap());
        assert!(matches!(
            r.next_chunk_into(&mut buf),
            Err(PersistError::Mismatch(_))
        ));
    }
}
