//! An indexed d-ary min-heap over node deadlines.
//!
//! The scheduler needs three things from its priority queue: pop the
//! earliest `(SimTime, node)` pair, change one node's deadline in place
//! (decrease-key *and* increase-key — deadlines move both ways when a
//! component is commanded), and stay bit-deterministic. A plain
//! `BinaryHeap` forces lazy invalidation: every reschedule pushes a new
//! entry and stale ones are discarded when they surface, so the heap
//! carries garbage proportional to the routing rate and every `peek`
//! re-validates against the node registry.
//!
//! [`IndexedHeap`] keeps at most one entry per node and a `node → slot`
//! position index, so [`IndexedHeap::set`] relocates the node with
//! ordinary sift operations in O(log n) and stale entries never exist.
//! The arity is 4 (`D`): sift-down does more comparisons per level but
//! the tree is half as deep and the slot array is walked with better
//! locality — the classic d-ary trade that favours decrease-key-heavy
//! workloads like a simulation scheduler.
//!
//! Ordering is lexicographic on `(deadline, node)`, which is exactly the
//! service order the harness guarantees (registration order on deadline
//! ties), so pops need no tie-break bookkeeping of their own.
//!
//! Nothing here allocates after the node-index arrays have grown to the
//! registered node count: `set`, `peek` and `pop` are allocation-free,
//! which is what makes the harness hot path zero-allocation in steady
//! state.

use crate::time::SimTime;

/// Sentinel for "node not currently scheduled".
const ABSENT: usize = usize::MAX;

/// Heap arity.
const D: usize = 4;

/// An indexed min-heap of `(SimTime, node)` keys with O(log n)
/// update-key per node. See the module docs.
#[derive(Debug, Default)]
pub struct IndexedHeap {
    /// Heap order: `heap[0]` is the earliest `(deadline, node)` pair.
    heap: Vec<usize>,
    /// `pos[node]` is the node's slot in `heap`, or [`ABSENT`].
    pos: Vec<usize>,
    /// `key[node]` is the node's deadline; valid only while scheduled.
    key: Vec<SimTime>,
}

impl IndexedHeap {
    /// An empty heap.
    pub fn new() -> Self {
        IndexedHeap::default()
    }

    /// Number of scheduled nodes.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no node is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The deadline the heap holds for `node`, if it is scheduled.
    pub fn deadline_of(&self, node: usize) -> Option<SimTime> {
        match self.pos.get(node) {
            Some(&p) if p != ABSENT => Some(self.key[node]),
            _ => None,
        }
    }

    /// The earliest `(deadline, node)` pair without removing it.
    pub fn peek(&self) -> Option<(SimTime, usize)> {
        self.heap.first().map(|&n| (self.key[n], n))
    }

    /// Schedules, reschedules, or (with `None`) unschedules `node` in
    /// O(log n). Idempotent when the deadline is unchanged. Grows the
    /// index arrays on first sight of a node, so callers register nodes
    /// simply by setting their deadline.
    pub fn set(&mut self, node: usize, at: Option<SimTime>) {
        if node >= self.pos.len() {
            self.pos.resize(node + 1, ABSENT);
            self.key.resize(node + 1, SimTime::ZERO);
        }
        let p = self.pos[node];
        match (p, at) {
            (ABSENT, None) => {}
            (ABSENT, Some(at)) => {
                self.key[node] = at;
                self.pos[node] = self.heap.len();
                self.heap.push(node);
                self.sift_up(self.heap.len() - 1);
            }
            (p, None) => self.remove_at(p),
            (p, Some(at)) => {
                let old = self.key[node];
                if at == old {
                    return;
                }
                self.key[node] = at;
                if at < old {
                    self.sift_up(p);
                } else {
                    self.sift_down(p);
                }
            }
        }
    }

    /// Removes and returns the earliest `(deadline, node)` pair.
    pub fn pop(&mut self) -> Option<(SimTime, usize)> {
        let &node = self.heap.first()?;
        let at = self.key[node];
        self.remove_at(0);
        Some((at, node))
    }

    /// Removes the entry at heap slot `p`, restoring the heap property.
    fn remove_at(&mut self, p: usize) {
        let node = self.heap[p];
        self.pos[node] = ABSENT;
        let last = self.heap.len() - 1;
        if p != last {
            let moved = self.heap[last];
            self.heap[p] = moved;
            self.pos[moved] = p;
            self.heap.pop();
            // The displaced entry may belong above or below slot `p`.
            self.sift_down(p);
            self.sift_up(self.pos[moved]);
        } else {
            self.heap.pop();
        }
    }

    /// `(key, node)` order of the nodes in heap slots `a` and `b`.
    #[inline]
    fn less(&self, a: usize, b: usize) -> bool {
        let (na, nb) = (self.heap[a], self.heap[b]);
        (self.key[na], na) < (self.key[nb], nb)
    }

    #[inline]
    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a]] = a;
        self.pos[self.heap[b]] = b;
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / D;
            if self.less(i, parent) {
                self.swap_slots(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let first_child = i * D + 1;
            if first_child >= self.heap.len() {
                break;
            }
            let mut best = first_child;
            let end = (first_child + D).min(self.heap.len());
            for c in first_child + 1..end {
                if self.less(c, best) {
                    best = c;
                }
            }
            if self.less(best, i) {
                self.swap_slots(i, best);
                i = best;
            } else {
                break;
            }
        }
    }

    #[cfg(debug_assertions)]
    #[allow(dead_code)]
    fn check_invariants(&self) {
        for (slot, &node) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[node], slot, "pos index out of sync");
            if slot > 0 {
                let parent = (slot - 1) / D;
                assert!(!self.less(slot, parent), "heap property violated");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    /// Reference: sort the live `(deadline, node)` set.
    fn drain_sorted(h: &mut IndexedHeap) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        while let Some((at, n)) = h.pop() {
            out.push((at.as_ns(), n));
        }
        out
    }

    /// Walks every permutation of `0..n` (Heap's algorithm, no RNG) and
    /// hands each to `f`.
    fn for_each_permutation(n: usize, mut f: impl FnMut(&[usize])) {
        let mut a: Vec<usize> = (0..n).collect();
        let mut c = vec![0usize; n];
        f(&a);
        let mut i = 0;
        while i < n {
            if c[i] < i {
                if i % 2 == 0 {
                    a.swap(0, i);
                } else {
                    a.swap(c[i], i);
                }
                f(&a);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn services_deadlines_in_time_then_node_order_for_all_insertion_orders() {
        // Deadlines with deliberate ties: nodes 1/4 share 50 ns, nodes
        // 0/3/5 share 20 ns. Whatever the insertion order, pops must come
        // out sorted by (deadline, node) — the harness's service order.
        let deadlines = [20u64, 50, 10, 20, 50, 20];
        let mut expected: Vec<(u64, usize)> =
            deadlines.iter().enumerate().map(|(n, &d)| (d, n)).collect();
        expected.sort_unstable();
        let mut checked = 0u32;
        for_each_permutation(deadlines.len(), |perm| {
            let mut h = IndexedHeap::new();
            for &n in perm {
                h.set(n, Some(t(deadlines[n])));
            }
            assert_eq!(drain_sorted(&mut h), expected, "insertion order {perm:?}");
            checked += 1;
        });
        assert_eq!(checked, 720, "all 6! permutations enumerated");
    }

    #[test]
    fn update_key_moves_both_directions() {
        let mut h = IndexedHeap::new();
        for (n, d) in [(0usize, 40u64), (1, 10), (2, 30), (3, 20)] {
            h.set(n, Some(t(d)));
        }
        // Decrease-key: node 0 jumps to the front.
        h.set(0, Some(t(5)));
        assert_eq!(h.peek(), Some((t(5), 0)));
        // Increase-key: node 0 sinks to the back.
        h.set(0, Some(t(100)));
        assert_eq!(h.peek(), Some((t(10), 1)));
        assert_eq!(
            drain_sorted(&mut h),
            vec![(10, 1), (20, 3), (30, 2), (100, 0)]
        );
    }

    #[test]
    fn update_key_exhaustive_against_reference() {
        // Every permutation of a key-mutation script applied to 5 nodes,
        // checked against a sort of the final (deadline, node) set. No
        // RNG: the scripts are enumerated.
        let ops: [(usize, Option<u64>); 5] = [
            (0, Some(70)), // increase
            (1, Some(5)),  // decrease
            (2, None),     // unschedule
            (3, Some(25)), // no-op (same key)
            (4, Some(25)), // tie with node 3
        ];
        for_each_permutation(ops.len(), |perm| {
            let mut h = IndexedHeap::new();
            let initial = [10u64, 20, 30, 25, 40];
            for (n, &d) in initial.iter().enumerate() {
                h.set(n, Some(t(d)));
            }
            let mut model: Vec<Option<u64>> = initial.iter().map(|&d| Some(d)).collect();
            for &k in perm {
                let (node, at) = ops[k];
                h.set(node, at.map(t));
                model[node] = at;
            }
            let mut expected: Vec<(u64, usize)> = model
                .iter()
                .enumerate()
                .filter_map(|(n, d)| d.map(|d| (d, n)))
                .collect();
            expected.sort_unstable();
            assert_eq!(drain_sorted(&mut h), expected, "script order {perm:?}");
        });
    }

    #[test]
    fn reschedule_after_pop_reenters_cleanly() {
        let mut h = IndexedHeap::new();
        h.set(0, Some(t(10)));
        h.set(1, Some(t(20)));
        assert_eq!(h.pop(), Some((t(10), 0)));
        assert_eq!(h.deadline_of(0), None);
        h.set(0, Some(t(15)));
        assert_eq!(h.deadline_of(0), Some(t(15)));
        assert_eq!(h.pop(), Some((t(15), 0)));
        assert_eq!(h.pop(), Some((t(20), 1)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn unschedule_absent_is_a_no_op() {
        let mut h = IndexedHeap::new();
        h.set(7, None);
        assert!(h.is_empty());
        h.set(7, Some(t(3)));
        h.set(7, None);
        assert!(h.is_empty());
        assert_eq!(h.deadline_of(7), None);
    }

    #[test]
    fn removal_from_middle_keeps_heap_property() {
        // Enough nodes to make the swap-with-last slot land mid-tree for
        // a 4-ary layout; remove each node in turn from a fresh heap.
        let deadlines: Vec<u64> = (0..17).map(|k| (k * 7 + 3) % 23).collect();
        for victim in 0..deadlines.len() {
            let mut h = IndexedHeap::new();
            for (n, &d) in deadlines.iter().enumerate() {
                h.set(n, Some(t(d)));
            }
            h.set(victim, None);
            let mut expected: Vec<(u64, usize)> = deadlines
                .iter()
                .enumerate()
                .filter(|&(n, _)| n != victim)
                .map(|(n, &d)| (d, n))
                .collect();
            expected.sort_unstable();
            assert_eq!(drain_sorted(&mut h), expected, "victim {victim}");
        }
    }
}
