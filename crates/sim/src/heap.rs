//! An indexed d-ary min-heap over node deadlines.
//!
//! The scheduler needs three things from its priority queue: pop the
//! earliest `(SimTime, node)` pair, change one node's deadline in place
//! (decrease-key *and* increase-key — deadlines move both ways when a
//! component is commanded), and stay bit-deterministic. A plain
//! `BinaryHeap` forces lazy invalidation: every reschedule pushes a new
//! entry and stale ones are discarded when they surface, so the heap
//! carries garbage proportional to the routing rate and every `peek`
//! re-validates against the node registry.
//!
//! [`IndexedHeap`] keeps at most one entry per node and a `node → slot`
//! position index, so [`IndexedHeap::set`] relocates the node with
//! ordinary sift operations in O(log n) and stale entries never exist.
//! The arity is 4 (`D`): sift-down does more comparisons per level but
//! the tree is half as deep and the slot array is walked with better
//! locality — the classic d-ary trade that favours decrease-key-heavy
//! workloads like a simulation scheduler.
//!
//! Ordering is lexicographic on `(deadline, node)`, which is exactly the
//! service order the harness guarantees (registration order on deadline
//! ties), so pops need no tie-break bookkeeping of their own.
//!
//! # Layout
//!
//! The heap is stored struct-of-arrays: the deadline keys live in their
//! own `heap_key` array, **in heap order**, parallel to the `heap_node`
//! array. Sift comparisons — the only thing the hot path does — then
//! walk one contiguous `SimTime` array instead of chasing `node → key`
//! indirections, and a parent-vs-children comparison round touches one
//! cache line of keys. The node ids ride along as `u32` (the slot array
//! too), halving the index traffic against the `usize` layout. Pop
//! order is strictly `(deadline, node)` lexicographic, so the layout is
//! unobservable: any internal arrangement yields the same service
//! sequence, which the enumerated-permutation tests below pin.
//!
//! Nothing here allocates after the node-index arrays have grown to the
//! registered node count: `set`, `peek` and `pop` are allocation-free,
//! which is what makes the harness hot path zero-allocation in steady
//! state.

use crate::time::SimTime;

/// Sentinel for "node not currently scheduled".
const ABSENT: u32 = u32::MAX;

/// Heap arity.
const D: usize = 4;

/// An indexed min-heap of `(SimTime, node)` keys with O(log n)
/// update-key per node. See the module docs.
#[derive(Debug, Default)]
pub struct IndexedHeap {
    /// Deadline of the entry in each heap slot (parallel to
    /// `heap_node`): `heap_key[0]` is the earliest deadline.
    heap_key: Vec<SimTime>,
    /// Node of the entry in each heap slot.
    heap_node: Vec<u32>,
    /// `pos[node]` is the node's slot in the heap arrays, or [`ABSENT`].
    pos: Vec<u32>,
}

impl IndexedHeap {
    /// An empty heap.
    pub fn new() -> Self {
        IndexedHeap::default()
    }

    /// Number of scheduled nodes.
    pub fn len(&self) -> usize {
        self.heap_node.len()
    }

    /// True when no node is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap_node.is_empty()
    }

    /// The deadline the heap holds for `node`, if it is scheduled.
    pub fn deadline_of(&self, node: usize) -> Option<SimTime> {
        match self.pos.get(node) {
            Some(&p) if p != ABSENT => Some(self.heap_key[p as usize]),
            _ => None,
        }
    }

    /// The earliest `(deadline, node)` pair without removing it.
    pub fn peek(&self) -> Option<(SimTime, usize)> {
        let &node = self.heap_node.first()?;
        Some((self.heap_key[0], node as usize))
    }

    /// Schedules, reschedules, or (with `None`) unschedules `node` in
    /// O(log n). Idempotent when the deadline is unchanged. Grows the
    /// index arrays on first sight of a node, so callers register nodes
    /// simply by setting their deadline.
    pub fn set(&mut self, node: usize, at: Option<SimTime>) {
        if node >= self.pos.len() {
            self.pos.resize(node + 1, ABSENT);
        }
        let p = self.pos[node];
        match (p, at) {
            (ABSENT, None) => {}
            (ABSENT, Some(at)) => {
                let slot = self.heap_node.len();
                self.pos[node] = slot as u32;
                self.heap_key.push(at);
                self.heap_node.push(node as u32);
                self.sift_up(slot);
            }
            (p, None) => self.remove_at(p as usize),
            (p, Some(at)) => {
                let p = p as usize;
                let old = self.heap_key[p];
                if at == old {
                    return;
                }
                self.heap_key[p] = at;
                if at < old {
                    self.sift_up(p);
                } else {
                    self.sift_down(p);
                }
            }
        }
    }

    /// Removes and returns the earliest `(deadline, node)` pair.
    pub fn pop(&mut self) -> Option<(SimTime, usize)> {
        let &node = self.heap_node.first()?;
        let at = self.heap_key[0];
        self.remove_at(0);
        Some((at, node as usize))
    }

    /// Removes the entry at heap slot `p`, restoring the heap property.
    fn remove_at(&mut self, p: usize) {
        self.pos[self.heap_node[p] as usize] = ABSENT;
        let last = self.heap_node.len() - 1;
        if p != last {
            let moved = self.heap_node[last];
            self.heap_node[p] = moved;
            self.heap_key[p] = self.heap_key[last];
            self.pos[moved as usize] = p as u32;
            self.heap_node.pop();
            self.heap_key.pop();
            // The displaced entry may belong above or below slot `p`.
            self.sift_down(p);
            self.sift_up(self.pos[moved as usize] as usize);
        } else {
            self.heap_node.pop();
            self.heap_key.pop();
        }
    }

    /// `(key, node)` order of the entries in heap slots `a` and `b`.
    #[inline]
    fn less(&self, a: usize, b: usize) -> bool {
        (self.heap_key[a], self.heap_node[a]) < (self.heap_key[b], self.heap_node[b])
    }

    #[inline]
    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap_key.swap(a, b);
        self.heap_node.swap(a, b);
        self.pos[self.heap_node[a] as usize] = a as u32;
        self.pos[self.heap_node[b] as usize] = b as u32;
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / D;
            if self.less(i, parent) {
                self.swap_slots(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let first_child = i * D + 1;
            if first_child >= self.heap_node.len() {
                break;
            }
            let mut best = first_child;
            let end = (first_child + D).min(self.heap_node.len());
            for c in first_child + 1..end {
                if self.less(c, best) {
                    best = c;
                }
            }
            if self.less(best, i) {
                self.swap_slots(i, best);
                i = best;
            } else {
                break;
            }
        }
    }

    #[cfg(debug_assertions)]
    #[allow(dead_code)]
    fn check_invariants(&self) {
        for (slot, &node) in self.heap_node.iter().enumerate() {
            assert_eq!(
                self.pos[node as usize], slot as u32,
                "pos index out of sync"
            );
            if slot > 0 {
                let parent = (slot - 1) / D;
                assert!(!self.less(slot, parent), "heap property violated");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    /// Reference: sort the live `(deadline, node)` set.
    fn drain_sorted(h: &mut IndexedHeap) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        while let Some((at, n)) = h.pop() {
            out.push((at.as_ns(), n));
        }
        out
    }

    /// Walks every permutation of `0..n` (Heap's algorithm, no RNG) and
    /// hands each to `f`.
    fn for_each_permutation(n: usize, mut f: impl FnMut(&[usize])) {
        let mut a: Vec<usize> = (0..n).collect();
        let mut c = vec![0usize; n];
        f(&a);
        let mut i = 0;
        while i < n {
            if c[i] < i {
                if i % 2 == 0 {
                    a.swap(0, i);
                } else {
                    a.swap(c[i], i);
                }
                f(&a);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn services_deadlines_in_time_then_node_order_for_all_insertion_orders() {
        // Deadlines with deliberate ties: nodes 1/4 share 50 ns, nodes
        // 0/3/5 share 20 ns. Whatever the insertion order, pops must come
        // out sorted by (deadline, node) — the harness's service order.
        let deadlines = [20u64, 50, 10, 20, 50, 20];
        let mut expected: Vec<(u64, usize)> =
            deadlines.iter().enumerate().map(|(n, &d)| (d, n)).collect();
        expected.sort_unstable();
        let mut checked = 0u32;
        for_each_permutation(deadlines.len(), |perm| {
            let mut h = IndexedHeap::new();
            for &n in perm {
                h.set(n, Some(t(deadlines[n])));
            }
            assert_eq!(drain_sorted(&mut h), expected, "insertion order {perm:?}");
            checked += 1;
        });
        assert_eq!(checked, 720, "all 6! permutations enumerated");
    }

    #[test]
    fn update_key_moves_both_directions() {
        let mut h = IndexedHeap::new();
        for (n, d) in [(0usize, 40u64), (1, 10), (2, 30), (3, 20)] {
            h.set(n, Some(t(d)));
        }
        // Decrease-key: node 0 jumps to the front.
        h.set(0, Some(t(5)));
        assert_eq!(h.peek(), Some((t(5), 0)));
        // Increase-key: node 0 sinks to the back.
        h.set(0, Some(t(100)));
        assert_eq!(h.peek(), Some((t(10), 1)));
        assert_eq!(
            drain_sorted(&mut h),
            vec![(10, 1), (20, 3), (30, 2), (100, 0)]
        );
    }

    #[test]
    fn update_key_exhaustive_against_reference() {
        // Every permutation of a key-mutation script applied to 5 nodes,
        // checked against a sort of the final (deadline, node) set. No
        // RNG: the scripts are enumerated.
        let ops: [(usize, Option<u64>); 5] = [
            (0, Some(70)), // increase
            (1, Some(5)),  // decrease
            (2, None),     // unschedule
            (3, Some(25)), // no-op (same key)
            (4, Some(25)), // tie with node 3
        ];
        for_each_permutation(ops.len(), |perm| {
            let mut h = IndexedHeap::new();
            let initial = [10u64, 20, 30, 25, 40];
            for (n, &d) in initial.iter().enumerate() {
                h.set(n, Some(t(d)));
            }
            let mut model: Vec<Option<u64>> = initial.iter().map(|&d| Some(d)).collect();
            for &k in perm {
                let (node, at) = ops[k];
                h.set(node, at.map(t));
                model[node] = at;
            }
            let mut expected: Vec<(u64, usize)> = model
                .iter()
                .enumerate()
                .filter_map(|(n, d)| d.map(|d| (d, n)))
                .collect();
            expected.sort_unstable();
            assert_eq!(drain_sorted(&mut h), expected, "script order {perm:?}");
        });
    }

    #[test]
    fn reschedule_after_pop_reenters_cleanly() {
        let mut h = IndexedHeap::new();
        h.set(0, Some(t(10)));
        h.set(1, Some(t(20)));
        assert_eq!(h.pop(), Some((t(10), 0)));
        assert_eq!(h.deadline_of(0), None);
        h.set(0, Some(t(15)));
        assert_eq!(h.deadline_of(0), Some(t(15)));
        assert_eq!(h.pop(), Some((t(15), 0)));
        assert_eq!(h.pop(), Some((t(20), 1)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn unschedule_absent_is_a_no_op() {
        let mut h = IndexedHeap::new();
        h.set(7, None);
        assert!(h.is_empty());
        h.set(7, Some(t(3)));
        h.set(7, None);
        assert!(h.is_empty());
        assert_eq!(h.deadline_of(7), None);
    }

    #[test]
    fn removal_from_middle_keeps_heap_property() {
        // Enough nodes to make the swap-with-last slot land mid-tree for
        // a 4-ary layout; remove each node in turn from a fresh heap.
        let deadlines: Vec<u64> = (0..17).map(|k| (k * 7 + 3) % 23).collect();
        for victim in 0..deadlines.len() {
            let mut h = IndexedHeap::new();
            for (n, &d) in deadlines.iter().enumerate() {
                h.set(n, Some(t(d)));
            }
            h.set(victim, None);
            let mut expected: Vec<(u64, usize)> = deadlines
                .iter()
                .enumerate()
                .filter(|&(n, _)| n != victim)
                .map(|(n, &d)| (d, n))
                .collect();
            expected.sort_unstable();
            assert_eq!(drain_sorted(&mut h), expected, "victim {victim}");
        }
    }
}
