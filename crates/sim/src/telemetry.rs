//! The workspace-wide deterministic telemetry registry.
//!
//! Half of the paper is measurement methodology (§5: four measurement
//! points, seven histograms, the TAP/PC-AT/pseudo-driver error models),
//! and the reproduction used to scatter its own observability the same
//! way the original lab did — per-crate counter structs, hand-plumbed
//! edge logs, ad-hoc claim tables. This module is the single metrics
//! substrate they all register into:
//!
//! * [`Registry`] — a flat tree of dotted-path metrics
//!   (`unixkern.h0.mbuf.drops`, `tokenring.ring0.purges`, …) held in a
//!   `BTreeMap`, so iteration order is the path order, always,
//! * [`Value`] — counters, gauges, fixed-bin [`Hist`]ograms and short
//!   text values (digests, labels); **no floats**, so serialization is
//!   byte-exact by construction,
//! * [`Event`] — sim-time-stamped edge signals (watchdog anomalies,
//!   cascade-guard trips, purge storms) appended in simulation order,
//! * phase snapshots ([`Registry::snapshot_phase`]) and counter deltas
//!   ([`Registry::delta`]) for before/after comparisons,
//! * a canonical JSON serializer ([`Registry::to_json`]): sorted keys,
//!   fixed two-space indentation, integers only, no timestamps other
//!   than simulated time — two runs of the same seed produce
//!   byte-identical bytes, which `tests/determinism.rs` pins with a
//!   golden FNV-1a digest.
//!
//! Stats structs implement [`Instrument`] to publish themselves under a
//! [`Scope`] (a registry view with a path prefix); the scheduler/event-bus
//! ([`crate::Harness`]) owns the registry for a run and pulls every
//! node's instruments on demand (Prometheus-style collection, but
//! deterministic), keeping the existing per-crate `stats()` accessors as
//! the thin typed views the numeric test envelopes already rely on.

use crate::persist::{Dec, Enc, Persist, PersistError};
use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One registered metric value. Everything is integral: floats are kept
/// out of the registry so the canonical serialization can never depend
/// on float formatting. Ratios are registered in parts-per-million.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// A monotonically non-decreasing event count.
    Counter(u64),
    /// A point-in-time level; may move in both directions.
    Gauge(i64),
    /// A fixed-bin histogram.
    Hist(Hist),
    /// A short identifying string (hex digests, mode labels).
    Text(String),
}

/// A fixed-bin histogram: `counts[k]` holds occurrences in
/// `[k·bin_width, (k+1)·bin_width)`; everything at or past the last
/// edge lands in `overflow`. Bin width and samples are plain integers
/// (typically nanoseconds), so histograms serialize exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    bin_width: u64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u64,
}

impl Hist {
    /// Creates an empty histogram of `bins` bins of `bin_width` units.
    pub fn new(bin_width: u64, bins: usize) -> Self {
        assert!(bin_width > 0, "bin width must be positive");
        assert!(bins > 0, "at least one bin");
        Hist {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let bin = (sample / self.bin_width) as usize;
        if bin < self.counts.len() {
            self.counts[bin] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += sample;
    }

    /// Samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all samples (mean = `sum / total`, computed by consumers).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Samples at or past the last bin edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn checked_delta(&self, base: &Hist) -> Option<Hist> {
        if self.bin_width != base.bin_width || self.counts.len() != base.counts.len() {
            return None;
        }
        Some(Hist {
            bin_width: self.bin_width,
            counts: self
                .counts
                .iter()
                .zip(&base.counts)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            overflow: self.overflow.saturating_sub(base.overflow),
            total: self.total.saturating_sub(base.total),
            sum: self.sum.saturating_sub(base.sum),
        })
    }
}

impl Hist {
    fn persist_bytes(&self, enc: &mut Enc) {
        enc.u64(self.bin_width);
        enc.seq_len(self.counts.len());
        for c in &self.counts {
            enc.u64(*c);
        }
        enc.u64(self.overflow);
        enc.u64(self.total);
        enc.u64(self.sum);
    }

    fn restore_bytes(dec: &mut Dec<'_>) -> Result<Hist, PersistError> {
        Ok(Hist {
            bin_width: dec.u64()?,
            counts: dec.seq(|d| d.u64())?,
            overflow: dec.u64()?,
            total: dec.u64()?,
            sum: dec.u64()?,
        })
    }
}

impl Value {
    fn persist_bytes(&self, enc: &mut Enc) {
        match self {
            Value::Counter(c) => {
                enc.u8(0);
                enc.u64(*c);
            }
            Value::Gauge(g) => {
                enc.u8(1);
                enc.i64(*g);
            }
            Value::Hist(h) => {
                enc.u8(2);
                h.persist_bytes(enc);
            }
            Value::Text(t) => {
                enc.u8(3);
                enc.str(t);
            }
        }
    }

    fn restore_bytes(dec: &mut Dec<'_>) -> Result<Value, PersistError> {
        Ok(match dec.u8()? {
            0 => Value::Counter(dec.u64()?),
            1 => Value::Gauge(dec.i64()?),
            2 => Value::Hist(Hist::restore_bytes(dec)?),
            3 => Value::Text(dec.str()?),
            tag => {
                return Err(PersistError::BadTag {
                    what: "telemetry value",
                    tag,
                })
            }
        })
    }
}

fn persist_metric_map(metrics: &BTreeMap<String, Value>, enc: &mut Enc) {
    enc.seq_len(metrics.len());
    for (path, v) in metrics {
        // Already in ascending key order: BTreeMap iteration.
        enc.str(path);
        v.persist_bytes(enc);
    }
}

fn restore_metric_map(dec: &mut Dec<'_>) -> Result<BTreeMap<String, Value>, PersistError> {
    let pairs = dec.seq(|d| Ok((d.str()?, Value::restore_bytes(d)?)))?;
    Ok(pairs.into_iter().collect())
}

/// A sim-time-stamped edge signal: something *happened*, as opposed to a
/// level that *is*. Watchdog anomalies, cascade-guard trips and purge
/// notifications are events; they are appended in simulation order and
/// survive metric re-collection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Simulated instant of the occurrence.
    pub at: SimTime,
    /// Dotted path naming the signal, e.g. `sim.cascade.overflow`.
    pub path: String,
    /// Free-form human-readable detail.
    pub detail: String,
}

/// A named frozen copy of the metric tree (see
/// [`Registry::snapshot_phase`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    /// Phase label, e.g. `warmup` or `cascade-failure`.
    pub name: String,
    /// The metric tree at snapshot time.
    pub metrics: BTreeMap<String, Value>,
}

/// The hierarchical metrics registry. See the module docs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    metrics: BTreeMap<String, Value>,
    events: Vec<Event>,
    phases: Vec<Phase>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or overwrites) a counter.
    pub fn counter(&mut self, path: impl Into<String>, v: u64) {
        self.metrics.insert(path.into(), Value::Counter(v));
    }

    /// Adds to a counter, registering it at zero first if absent.
    pub fn add_counter(&mut self, path: impl Into<String>, v: u64) {
        match self.metrics.entry(path.into()).or_insert(Value::Counter(0)) {
            Value::Counter(c) => *c += v,
            other => panic!("add_counter on non-counter metric {other:?}"),
        }
    }

    /// Registers (or overwrites) a gauge.
    pub fn gauge(&mut self, path: impl Into<String>, v: i64) {
        self.metrics.insert(path.into(), Value::Gauge(v));
    }

    /// Registers (or overwrites) a histogram.
    pub fn hist(&mut self, path: impl Into<String>, h: Hist) {
        self.metrics.insert(path.into(), Value::Hist(h));
    }

    /// Registers (or overwrites) a text value.
    pub fn text(&mut self, path: impl Into<String>, v: impl Into<String>) {
        self.metrics.insert(path.into(), Value::Text(v.into()));
    }

    /// Appends an edge-signal event.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous event: events are recorded in
    /// simulation order, exactly like [`crate::EdgeLog`].
    pub fn event(&mut self, at: SimTime, path: impl Into<String>, detail: impl Into<String>) {
        if let Some(last) = self.events.last() {
            assert!(
                at >= last.at,
                "telemetry event out of order: {at} after {}",
                last.at
            );
        }
        self.events.push(Event {
            at,
            path: path.into(),
            detail: detail.into(),
        });
    }

    /// A view of this registry under a dotted path prefix.
    pub fn scope<'a>(&'a mut self, prefix: &str) -> Scope<'a> {
        Scope {
            reg: self,
            prefix: prefix.to_string(),
        }
    }

    /// Looks up a metric by full path.
    pub fn get(&self, path: &str) -> Option<&Value> {
        self.metrics.get(path)
    }

    /// Convenience: the value of a counter metric, or `None` if absent or
    /// not a counter.
    pub fn counter_value(&self, path: &str) -> Option<u64> {
        match self.metrics.get(path) {
            Some(Value::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// All metrics in path order (the only order there is).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Recorded events, in simulation order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Recorded phase snapshots, in snapshot order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Drops every metric, keeping events and phase snapshots: the
    /// collector rebuilds the tree from live instruments on each pull,
    /// while the edge-signal history and frozen phases persist.
    pub fn clear_metrics(&mut self) {
        self.metrics.clear();
    }

    /// Freezes the current metric tree under `name`. Snapshots are kept
    /// in order and serialized with the registry, so a run report can
    /// show per-phase state (warmup vs. steady vs. failure).
    pub fn snapshot_phase(&mut self, name: impl Into<String>) {
        self.phases.push(Phase {
            name: name.into(),
            metrics: self.metrics.clone(),
        });
    }

    /// The metric tree frozen under `name`, if that phase was snapshot.
    pub fn phase(&self, name: &str) -> Option<&BTreeMap<String, Value>> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| &p.metrics)
    }

    /// Counter-delta semantics: a registry whose counters and histograms
    /// are `self − base` (saturating; metrics absent from `base` pass
    /// through whole), whose gauges and texts are taken from `self`, and
    /// whose events are those recorded after `base`'s last event. Phase
    /// snapshots are not carried over.
    pub fn delta(&self, base: &Registry) -> Registry {
        let mut metrics = BTreeMap::new();
        for (path, v) in &self.metrics {
            let dv = match (v, base.metrics.get(path)) {
                (Value::Counter(a), Some(Value::Counter(b))) => {
                    Value::Counter(a.saturating_sub(*b))
                }
                (Value::Hist(a), Some(Value::Hist(b))) => match a.checked_delta(b) {
                    Some(d) => Value::Hist(d),
                    None => v.clone(),
                },
                _ => v.clone(),
            };
            metrics.insert(path.clone(), dv);
        }
        Registry {
            metrics,
            events: self.events[base.events.len().min(self.events.len())..].to_vec(),
            phases: Vec::new(),
        }
    }

    /// Canonical JSON: metrics in path order, two-space indentation,
    /// `\n` separators, integers only, no wall-clock anything. The same
    /// registry always serializes to the same bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"metrics\": ");
        write_metric_map(&mut out, &self.metrics, 1);
        out.push_str(",\n  \"events\": [");
        for (k, e) in self.events.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"at_ns\": {}, \"path\": {}, \"detail\": {}}}",
                e.at.as_ns(),
                json_string(&e.path),
                json_string(&e.detail)
            );
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"phases\": [");
        for (k, p) in self.phases.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"metrics\": ",
                json_string(&p.name)
            );
            write_metric_map(&mut out, &p.metrics, 2);
            out.push('}');
        }
        if !self.phases.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }

    /// 64-bit FNV-1a digest of the canonical JSON bytes — the registry's
    /// golden fingerprint for determinism regression tests.
    pub fn digest(&self) -> u64 {
        fnv1a(self.to_json().as_bytes())
    }
}

impl Persist for Registry {
    /// Encodes the event history and phase snapshots — the parts of the
    /// registry that *cannot* be rebuilt by re-collecting instruments.
    /// Live metrics are deliberately excluded: the harness's collector
    /// clears and repopulates them from component state on every pull,
    /// so persisting them would only duplicate component state.
    fn persist(&self, enc: &mut Enc) {
        enc.seq_len(self.events.len());
        for e in &self.events {
            enc.time(e.at);
            enc.str(&e.path);
            enc.str(&e.detail);
        }
        enc.seq_len(self.phases.len());
        for p in &self.phases {
            enc.str(&p.name);
            persist_metric_map(&p.metrics, enc);
        }
    }

    fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError> {
        self.events = dec.seq(|d| {
            Ok(Event {
                at: d.time()?,
                path: d.str()?,
                detail: d.str()?,
            })
        })?;
        self.phases = dec.seq(|d| {
            Ok(Phase {
                name: d.str()?,
                metrics: restore_metric_map(d)?,
            })
        })?;
        self.metrics.clear();
        Ok(())
    }
}

fn write_metric_map(out: &mut String, metrics: &BTreeMap<String, Value>, depth: usize) {
    let pad = "  ".repeat(depth);
    out.push('{');
    for (k, (path, v)) in metrics.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n{pad}  {}: ", json_string(path));
        match v {
            Value::Counter(c) => {
                let _ = write!(out, "{{\"counter\": {c}}}");
            }
            Value::Gauge(g) => {
                let _ = write!(out, "{{\"gauge\": {g}}}");
            }
            Value::Text(t) => {
                let _ = write!(out, "{{\"text\": {}}}", json_string(t));
            }
            Value::Hist(h) => {
                let _ = write!(
                    out,
                    "{{\"hist\": {{\"bin_width\": {}, \"counts\": [",
                    h.bin_width
                );
                for (i, c) in h.counts.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{c}");
                }
                let _ = write!(
                    out,
                    "], \"overflow\": {}, \"total\": {}, \"sum\": {}}}}}",
                    h.overflow, h.total, h.sum
                );
            }
        }
    }
    if !metrics.is_empty() {
        let _ = write!(out, "\n{pad}");
    }
    out.push('}');
}

/// 64-bit FNV-1a over raw bytes (the same function [`crate::EdgeLog`]
/// uses over edges, exposed for golden-digest tests).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// JSON string literal with the escapes JSON requires (quote, backslash,
/// control characters).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal for an `f64` (shortest round-trip form, which is
/// a pure function of the value). Non-finite values, which JSON cannot
/// carry, become `null`. Only *report* layers (claim tables) use floats;
/// registry values themselves are integral.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v:?}");
        // `{:?}` always includes a decimal point or exponent, so the
        // token is a valid JSON number as-is.
        s
    } else {
        "null".to_string()
    }
}

/// A registry view that prefixes every path with `prefix.`; instruments
/// publish through this so one stats struct can be mounted anywhere in
/// the tree.
pub struct Scope<'a> {
    reg: &'a mut Registry,
    prefix: String,
}

impl Scope<'_> {
    fn path(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", self.prefix)
        }
    }

    /// Registers a counter under this scope.
    pub fn counter(&mut self, name: &str, v: u64) {
        let p = self.path(name);
        self.reg.counter(p, v);
    }

    /// Registers a gauge under this scope.
    pub fn gauge(&mut self, name: &str, v: i64) {
        let p = self.path(name);
        self.reg.gauge(p, v);
    }

    /// Registers a histogram under this scope.
    pub fn hist(&mut self, name: &str, h: Hist) {
        let p = self.path(name);
        self.reg.hist(p, h);
    }

    /// Registers a text value under this scope.
    pub fn text(&mut self, name: &str, v: impl Into<String>) {
        let p = self.path(name);
        self.reg.text(p, v);
    }

    /// Appends an event whose path is under this scope.
    pub fn event(&mut self, at: SimTime, name: &str, detail: impl Into<String>) {
        let p = self.path(name);
        self.reg.event(at, p, detail);
    }

    /// A sub-scope one dotted level down.
    pub fn scope(&mut self, name: &str) -> Scope<'_> {
        let prefix = self.path(name);
        Scope {
            reg: self.reg,
            prefix,
        }
    }

    /// Publishes an [`Instrument`] under a sub-scope in one call.
    pub fn publish(&mut self, name: &str, instrument: &dyn Instrument) {
        instrument.publish(&mut self.scope(name));
    }
}

/// A stats source that registers its values into the telemetry tree.
///
/// Every per-crate stats struct (`MbufStats`, `RingStats`,
/// `TrDriverStats`, …) implements this; the collector mounts each under
/// its dotted namespace, so the registry is always a complete, ordered
/// union of the workspace's counters.
pub trait Instrument {
    /// Registers this source's current values under `scope`.
    fn publish(&self, scope: &mut Scope<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn metrics_iterate_in_path_order() {
        let mut r = Registry::new();
        r.counter("z.last", 1);
        r.counter("a.first", 2);
        r.gauge("m.middle", -3);
        let paths: Vec<&str> = r.iter().map(|(p, _)| p).collect();
        assert_eq!(paths, vec!["a.first", "m.middle", "z.last"]);
    }

    #[test]
    fn scope_prefixes_and_nests() {
        let mut r = Registry::new();
        let mut s = r.scope("unixkern.h0");
        s.counter("mbuf.drops", 4);
        s.scope("kern").counter("ticks", 9);
        assert_eq!(r.counter_value("unixkern.h0.mbuf.drops"), Some(4));
        assert_eq!(r.counter_value("unixkern.h0.kern.ticks"), Some(9));
    }

    #[test]
    fn json_is_canonical_and_stable() {
        let build = || {
            let mut r = Registry::new();
            r.counter("b", 2);
            r.counter("a", 1);
            r.gauge("g", -7);
            r.text("t", "x\"y");
            let mut h = Hist::new(10, 3);
            h.record(0);
            h.record(25);
            h.record(99);
            r.hist("h", h);
            r.event(t(5), "ev", "first");
            r
        };
        let a = build().to_json();
        let b = build().to_json();
        assert_eq!(a, b, "same registry must serialize to the same bytes");
        assert!(a.contains("\"a\": {\"counter\": 1}"));
        assert!(a.contains("\"g\": {\"gauge\": -7}"));
        assert!(a.contains("\\\"y"));
        assert!(a.contains("\"counts\": [1, 0, 1], \"overflow\": 1, \"total\": 3, \"sum\": 124"));
        assert!(a.contains("\"at_ns\": 5000000"));
        assert_eq!(build().digest(), build().digest());
    }

    #[test]
    fn hist_bins_and_overflow() {
        let mut h = Hist::new(1000, 4);
        for v in [0, 999, 1000, 3999, 4000, 50_000] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 1]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 6);
        assert_eq!(h.sum(), 59_998);
    }

    #[test]
    fn delta_subtracts_counters_and_slices_events() {
        let mut base = Registry::new();
        base.counter("c", 10);
        base.event(t(1), "e", "old");
        let mut now = base.clone();
        now.counter("c", 25);
        now.counter("fresh", 3);
        now.gauge("g", 5);
        now.event(t(2), "e", "new");
        let d = now.delta(&base);
        assert_eq!(d.counter_value("c"), Some(15));
        assert_eq!(d.counter_value("fresh"), Some(3));
        assert_eq!(d.get("g"), Some(&Value::Gauge(5)));
        assert_eq!(d.events().len(), 1);
        assert_eq!(d.events()[0].detail, "new");
    }

    #[test]
    fn phase_snapshots_freeze_the_tree() {
        let mut r = Registry::new();
        r.counter("c", 1);
        r.snapshot_phase("warmup");
        r.counter("c", 9);
        assert_eq!(
            r.phase("warmup").and_then(|m| match m.get("c") {
                Some(Value::Counter(c)) => Some(*c),
                _ => None,
            }),
            Some(1)
        );
        assert_eq!(r.counter_value("c"), Some(9));
        let json = r.to_json();
        assert!(json.contains("\"name\": \"warmup\""));
    }

    #[test]
    fn clear_metrics_keeps_events_and_phases() {
        let mut r = Registry::new();
        r.counter("c", 1);
        r.snapshot_phase("p");
        r.event(t(3), "e", "kept");
        r.clear_metrics();
        assert!(r.is_empty());
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.phases().len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn events_must_be_monotonic() {
        let mut r = Registry::new();
        r.event(t(5), "e", "");
        r.event(t(4), "e", "");
    }

    #[test]
    fn float_formatting_for_reports() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(10740.0), "10740.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn instrument_publish_helper() {
        struct S;
        impl Instrument for S {
            fn publish(&self, scope: &mut Scope<'_>) {
                scope.counter("x", 7);
            }
        }
        let mut r = Registry::new();
        r.scope("top").publish("sub", &S);
        assert_eq!(r.counter_value("top.sub.x"), Some(7));
    }
}
