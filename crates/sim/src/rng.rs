//! Deterministic random-number generation.
//!
//! The whole reproduction is a discrete-event simulation whose regression
//! tests assert on *exact* histogram contents, so randomness must be fully
//! deterministic and independent of third-party crate versions. This module
//! implements a small, well-known generator stack from scratch:
//!
//! * [`SplitMix64`] — seed expansion / stream derivation,
//! * [`Pcg32`] — the main generator (PCG XSH-RR 64/32),
//! * distribution helpers (uniform, exponential, normal, Poisson, Bernoulli)
//!   sufficient for the traffic models of the paper's §5.3.
//!
//! Components derive child generators by *stream label* so that adding a new
//! consumer never perturbs the draws seen by existing ones.

use crate::persist::{Dec, Enc, Persist, PersistError};
use crate::time::Dur;

/// SplitMix64, used to expand seeds and hash stream labels.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a seed expander from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Hashes a byte-string label into a 64-bit stream identifier (FNV-1a).
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// PCG XSH-RR 64/32: a small, fast, statistically strong generator.
///
/// Each `(seed, stream)` pair selects an independent sequence.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    const MULT: u64 = 6_364_136_223_846_793_005;

    /// Creates a generator from a seed and a stream selector.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        let _ = rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        let _ = rng.next_u32();
        rng
    }

    /// Derives a child generator whose stream is selected by `label`.
    ///
    /// Child derivation draws nothing from `self`, so derivation order does
    /// not perturb this generator's own sequence.
    pub fn derive(&self, label: &str) -> Pcg32 {
        let mut mix = SplitMix64::new(self.state ^ hash_label(label));
        let seed = mix.next_u64();
        let stream = mix.next_u64();
        Pcg32::new(seed, stream)
    }

    /// Returns the next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(Self::MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Pcg32::below: zero bound");
        // Widening-multiply rejection sampling.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
            // Rejected; resample. Rejection probability < bound / 2^64.
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Pcg32::range_u64: lo > hi");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform usize in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed float with the given mean.
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exp_f64: non-positive mean");
        // Inverse CDF; (1 - u) avoids ln(0).
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal via Box–Muller (single value; the pair's partner is
    /// discarded to keep the draw count deterministic per call).
    pub fn normal_f64(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "normal_f64: negative std dev");
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Poisson-distributed count (Knuth's method; fine for the small means
    /// used by the traffic generators).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean >= 0.0, "poisson: negative mean");
        if mean == 0.0 {
            return 0;
        }
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= limit {
                return k;
            }
            k += 1;
            // Defensive bound: the generators never use means over ~100.
            if k > 100_000 {
                return k;
            }
        }
    }

    /// Exponentially distributed duration with the given mean, for Poisson
    /// inter-arrival processes.
    pub fn exp_dur(&mut self, mean: Dur) -> Dur {
        Dur::from_us_f64(self.exp_f64(mean.as_us_f64()))
    }

    /// Uniformly distributed duration in `[lo, hi]`.
    pub fn uniform_dur(&mut self, lo: Dur, hi: Dur) -> Dur {
        Dur::from_ns(self.range_u64(lo.as_ns(), hi.as_ns()))
    }

    /// Normally distributed duration, truncated below at zero.
    pub fn normal_dur(&mut self, mean: Dur, std_dev: Dur) -> Dur {
        Dur::from_us_f64(self.normal_f64(mean.as_us_f64(), std_dev.as_us_f64()))
    }
}

impl Persist for Pcg32 {
    fn persist(&self, enc: &mut Enc) {
        enc.u64(self.state);
        enc.u64(self.inc);
    }
    fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError> {
        self.state = dec.u64()?;
        self.inc = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn pcg_known_independence_of_streams() {
        let mut a = Pcg32::new(7, 1);
        let mut b = Pcg32::new(7, 2);
        let xs: Vec<u32> = (0..32).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..32).map(|_| b.next_u32()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derive_does_not_perturb_parent() {
        let mut a = Pcg32::new(7, 1);
        let mut b = Pcg32::new(7, 1);
        let _child = b.derive("vca");
        for _ in 0..16 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn derive_distinct_labels_distinct_streams() {
        let root = Pcg32::new(1, 1);
        let mut x = root.derive("ring");
        let mut y = root.derive("host");
        assert_ne!(
            (0..8).map(|_| x.next_u32()).collect::<Vec<_>>(),
            (0..8).map(|_| y.next_u32()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Pcg32::new(3, 3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Pcg32::new(9, 9);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = Pcg32::new(11, 4);
        let n = 20_000;
        let mean = 250.0;
        let sum: f64 = (0..n).map(|_| r.exp_f64(mean)).sum();
        let emp = sum / n as f64;
        assert!(
            (emp - mean).abs() < mean * 0.05,
            "empirical mean {emp} too far from {mean}"
        );
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = Pcg32::new(13, 5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal_f64(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut r = Pcg32::new(17, 6);
        let n = 10_000;
        let sum: u64 = (0..n).map(|_| r.poisson(3.0)).sum();
        let emp = sum as f64 / n as f64;
        assert!((emp - 3.0).abs() < 0.15, "empirical mean {emp}");
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn duration_helpers_respect_bounds() {
        let mut r = Pcg32::new(19, 7);
        for _ in 0..200 {
            let d = r.uniform_dur(Dur::from_us(10), Dur::from_us(20));
            assert!(d >= Dur::from_us(10) && d <= Dur::from_us(20));
        }
        // Truncated normal never goes negative.
        for _ in 0..200 {
            let _ = r.normal_dur(Dur::from_us(1), Dur::from_us(100));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Pcg32::new(23, 8);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range p clamps rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }
}
