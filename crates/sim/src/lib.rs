//! # ctms-sim — discrete-event simulation engine
//!
//! Foundation for the reproduction of *"Distributed Multimedia: How Can the
//! Necessary Data Rates be Supported?"* (Pasieka, Crumley, Marks, Infortuna;
//! USENIX 1991). The paper measured a physical prototype — IBM RT/PCs on a
//! 4 Mbit Token Ring with a modified AOS 4.3 kernel. This workspace rebuilds
//! that prototype as a deterministic discrete-event simulation; this crate
//! provides the shared substrate:
//!
//! * [`time`] — nanosecond-resolution simulation clock types,
//! * [`rng`] — deterministic, stream-splittable random numbers,
//! * [`engine`] — the [`engine::Component`] state-machine protocol and a
//!   closure-based [`engine::EventLoop`] for tests,
//! * [`bus`] — the generic scheduler/event-bus ([`bus::Harness`]): a
//!   [`bus::NodeId`]-addressable registry, a central deadline scheduler
//!   with deterministic tie-breaking, and typed routing via [`bus::Router`],
//! * [`heap`] — the indexed d-ary min-heap behind the scheduler
//!   (update-key per node, no stale entries, allocation-free stepping),
//! * [`shard`] — the conservative parallel scheduler
//!   ([`shard::ShardedHarness`]): per-shard deadline heaps on the sweep
//!   pool, bounded-time-window synchronization with per-shard windows
//!   derived from each shard's incident cut-edge lookaheads, and
//!   deterministic cross-shard mailboxes — bit-identical to the
//!   single-threaded harness by construction,
//! * [`synth`] — synthetic allocation-free workloads for the perf
//!   harness and the zero-allocation steady-state test,
//! * [`persist`] — canonical binary state serialization ([`persist::Persist`])
//!   for checkpoint/restore with byte-identical resume,
//! * [`sweep`] — a `std::thread` fan-out for independent simulations with
//!   results returned in sequential order,
//! * [`trace`] — ground-truth signal edge logs for the measurement points,
//! * [`telemetry`] — the workspace-wide deterministic metrics registry
//!   (counters, gauges, fixed-bin histograms, edge-signal events) with
//!   canonical, byte-stable JSON serialization.

#[cfg(feature = "alloc-count")]
pub mod alloc_count;
pub mod bus;
pub mod engine;
pub mod heap;
pub mod persist;
pub mod rng;
pub mod shard;
pub mod sweep;
pub mod synth;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use bus::{
    CascadeError, CmdSink, Harness, NodeId, Router, SchedMode, SpeculationFault,
    DEFAULT_CASCADE_LIMIT,
};
pub use engine::{drain_component, earliest, CascadeGuard, Component, EventLoop};
pub use heap::IndexedHeap;
pub use persist::{
    decode_new, ChunkSink, ChunkedReader, ChunkedWriter, Dec, Enc, FramedWrite, Persist,
    PersistError, Rollback, STREAM_CHUNK,
};
pub use rng::{Pcg32, SplitMix64};
pub use shard::{
    merge_mail, ExecMode, MailKey, MergeTelemetry, ShardStats, ShardedHarness, WindowMode,
};
pub use sweep::{default_threads, parallel_map};
pub use telemetry::{Instrument, Registry};
pub use time::{Dur, SimTime};
pub use trace::{Edge, EdgeLog};
