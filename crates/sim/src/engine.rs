//! The discrete-event execution model.
//!
//! Substrate crates (token ring, RT/PC machine, kernel, devices) model their
//! domain as a *passive state machine* implementing [`Component`]: it never
//! schedules global events itself, it only reports the next instant at which
//! it wants control ([`Component::next_deadline`]) and emits typed outputs
//! when advanced or commanded. The top-level testbed (in `ctms-core`) owns
//! the clock, advances whichever component is due next, and routes outputs
//! between components — the "motherboard" pattern. This keeps every
//! substrate unit-testable in isolation.
//!
//! A small closure-based scheduler ([`EventLoop`]) is also provided for
//! driving a single component in unit tests.

use crate::time::SimTime;

/// A passive, deterministic discrete-event state machine.
///
/// Invariants a correct component must uphold:
///
/// * `advance(now)` and `handle(now, ..)` are only called with
///   monotonically non-decreasing `now`, and never earlier than the last
///   reported deadline that has already fired.
/// * After `advance(now)` returns, `next_deadline()` is either `None` or
///   strictly in the future **unless** the component produced new outputs at
///   `now` that legitimately cascade (the executor bounds same-instant
///   cascades).
pub trait Component {
    /// Commands routed *into* the component.
    type Cmd;
    /// Events the component emits for the router.
    type Out;

    /// The next instant at which the component needs control, if any.
    fn next_deadline(&self) -> Option<SimTime>;

    /// Advances internal state to `now`, appending any outputs to `sink`.
    fn advance(&mut self, now: SimTime, sink: &mut Vec<Self::Out>);

    /// Delivers a command at `now`, appending any outputs to `sink`.
    fn handle(&mut self, now: SimTime, cmd: Self::Cmd, sink: &mut Vec<Self::Out>);

    /// Registers the component's current statistics into the telemetry
    /// tree under `scope` (the collector mounts each node under its
    /// dotted namespace). The default publishes nothing, so passive
    /// components and test doubles need no boilerplate.
    fn publish_telemetry(&self, scope: &mut crate::telemetry::Scope<'_>) {
        let _ = scope;
    }
}

/// Returns the earliest of a set of optional deadlines.
pub fn earliest<I>(deadlines: I) -> Option<SimTime>
where
    I: IntoIterator<Item = Option<SimTime>>,
{
    deadlines.into_iter().flatten().min()
}

/// Guard against livelock: bounds the number of same-instant routing
/// cascades the executor will perform before declaring a bug.
#[derive(Debug)]
pub struct CascadeGuard {
    at: SimTime,
    steps: u32,
    limit: u32,
}

impl CascadeGuard {
    /// Creates a guard with the given same-instant step limit.
    pub fn new(limit: u32) -> Self {
        CascadeGuard {
            at: SimTime::ZERO,
            steps: 0,
            limit,
        }
    }

    /// Records one routing step at `now`.
    ///
    /// # Panics
    ///
    /// Panics if more than `limit` steps occur without simulated time
    /// advancing — this always indicates a component scheduling itself at
    /// the current instant forever.
    pub fn step(&mut self, now: SimTime) {
        if now != self.at {
            self.at = now;
            self.steps = 0;
        }
        self.steps += 1;
        assert!(
            self.steps <= self.limit,
            "cascade guard tripped: {} same-instant routing steps at {now}",
            self.steps
        );
    }
}

impl Default for CascadeGuard {
    fn default() -> Self {
        CascadeGuard::new(100_000)
    }
}

/// A minimal closure-event scheduler for unit tests and self-contained
/// models.
///
/// Events are `FnOnce(&mut W, &mut EventLoop<W>)`.
///
/// # Tie-break order
///
/// Events are served in `(time, scheduling order)` — strict FIFO among
/// events sharing an instant. That includes events scheduled *during*
/// the instant: an event that schedules another event at the current
/// time runs it after everything already queued at that time, never
/// before (each `at`/`after` call takes the next sequence number).
///
/// # Storage reuse
///
/// Entries live in a slab (`slots`) addressed by a `(at, seq, slot)`
/// priority queue; fired slots chain onto an intrusive free list
/// (`free_head` threads through the `Free` variant, so the slab is a
/// single contiguous allocation with no side vector) and are reused by
/// later events, so the slab and queue stop growing once the loop
/// reaches its peak in-flight event count. The per-event closure `Box`
/// itself is inherent to type-erased `FnOnce` storage and is the only
/// allocation a steady-state reschedule performs.
pub struct EventLoop<W> {
    now: SimTime,
    seq: u64,
    /// Min-order on `(at, seq)`; the payload index addresses `slots`.
    queue: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64, usize)>>,
    slots: Vec<SlabSlot<W>>,
    /// Head of the intrusive free list, `NO_SLOT` when every slot is live.
    free_head: usize,
}

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut EventLoop<W>)>;

/// Sentinel terminating the slab free list.
const NO_SLOT: usize = usize::MAX;

enum SlabSlot<W> {
    /// A scheduled, not-yet-fired event.
    Live(EventFn<W>),
    /// A fired slot; the payload is the next free slot (`NO_SLOT` ends
    /// the list).
    Free(usize),
}

impl<W> EventLoop<W> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        EventLoop {
            now: SimTime::ZERO,
            seq: 0,
            queue: std::collections::BinaryHeap::new(),
            slots: Vec::new(),
            free_head: NO_SLOT,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `f` to run at absolute time `at` (after any event
    /// already scheduled at `at` — see the type docs on tie-breaking).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut EventLoop<W>) + 'static) {
        assert!(
            at >= self.now,
            "EventLoop::at: {at} is before now={}",
            self.now
        );
        self.seq += 1;
        let f: EventFn<W> = Box::new(f);
        let slot = if self.free_head != NO_SLOT {
            let s = self.free_head;
            match std::mem::replace(&mut self.slots[s], SlabSlot::Live(f)) {
                SlabSlot::Free(next) => self.free_head = next,
                SlabSlot::Live(_) => unreachable!("free list pointed at a live slot"),
            }
            s
        } else {
            self.slots.push(SlabSlot::Live(f));
            self.slots.len() - 1
        };
        self.queue.push(std::cmp::Reverse((at, self.seq, slot)));
    }

    /// Schedules `f` to run after a delay.
    pub fn after(
        &mut self,
        delay: crate::time::Dur,
        f: impl FnOnce(&mut W, &mut EventLoop<W>) + 'static,
    ) {
        let at = self.now + delay;
        self.at(at, f);
    }

    /// Runs events until the queue drains or time would pass `until`.
    ///
    /// Returns the number of events fired.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) -> u64 {
        let mut fired = 0;
        while let Some(&std::cmp::Reverse((at, _, _))) = self.queue.peek() {
            if at > until {
                break;
            }
            let std::cmp::Reverse((at, _, slot)) = self.queue.pop().expect("peeked entry");
            let f = match std::mem::replace(&mut self.slots[slot], SlabSlot::Free(self.free_head)) {
                SlabSlot::Live(f) => f,
                SlabSlot::Free(_) => unreachable!("queue pointed at a free slot"),
            };
            self.free_head = slot;
            self.now = at;
            f(world, self);
            fired += 1;
        }
        // Leave `now` at the horizon so subsequent `after` calls are
        // relative to the end of the window.
        if self.now < until {
            self.now = until;
        }
        fired
    }

    /// Runs all remaining events.
    pub fn run_to_completion(&mut self, world: &mut W) -> u64 {
        self.run_until(world, SimTime::MAX)
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Slab slots currently allocated (live + reusable). Bounded by the
    /// peak in-flight event count, not the total events ever scheduled.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }
}

impl<W> Default for EventLoop<W> {
    fn default() -> Self {
        EventLoop::new()
    }
}

/// Drives a single [`Component`] in isolation: advances it through its own
/// deadlines up to `until`, collecting every output with the time it was
/// emitted. The workhorse of substrate unit tests.
pub fn drain_component<C: Component>(c: &mut C, until: SimTime) -> Vec<(SimTime, C::Out)> {
    let mut out = Vec::new();
    let mut guard = CascadeGuard::default();
    let mut sink = Vec::new();
    while let Some(t) = c.next_deadline() {
        if t > until {
            break;
        }
        guard.step(t);
        c.advance(t, &mut sink);
        out.extend(sink.drain(..).map(|o| (t, o)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn event_loop_orders_by_time_then_fifo() {
        let mut el: EventLoop<Vec<u32>> = EventLoop::new();
        let mut world = Vec::new();
        el.at(SimTime::from_us(20), |w: &mut Vec<u32>, _| w.push(3));
        el.at(SimTime::from_us(10), |w: &mut Vec<u32>, _| w.push(1));
        el.at(SimTime::from_us(10), |w: &mut Vec<u32>, _| w.push(2));
        el.run_to_completion(&mut world);
        assert_eq!(world, vec![1, 2, 3]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut el: EventLoop<Vec<u64>> = EventLoop::new();
        let mut world = Vec::new();
        fn tick(w: &mut Vec<u64>, el: &mut EventLoop<Vec<u64>>) {
            w.push(el.now().as_us());
            if w.len() < 5 {
                el.after(Dur::from_us(12_000), tick);
            }
        }
        el.at(SimTime::ZERO, tick);
        el.run_to_completion(&mut world);
        assert_eq!(world, vec![0, 12_000, 24_000, 36_000, 48_000]);
    }

    #[test]
    fn same_instant_fifo_holds_for_mid_instant_scheduling() {
        // Regression for the documented tie-break: an event firing at t
        // that schedules another event at the same t must run it after
        // every event already queued at t — strict FIFO by scheduling
        // order, even across the slab's slot reuse.
        let mut el: EventLoop<Vec<&'static str>> = EventLoop::new();
        let mut world = Vec::new();
        let t = SimTime::from_us(10);
        el.at(t, move |w: &mut Vec<&'static str>, el| {
            w.push("a");
            el.at(t, |w: &mut Vec<&'static str>, _| w.push("a-child"));
        });
        el.at(t, |w: &mut Vec<&'static str>, _| w.push("b"));
        el.run_to_completion(&mut world);
        assert_eq!(world, vec!["a", "b", "a-child"]);
    }

    #[test]
    fn slab_slots_are_reused_across_fired_events() {
        // A self-rescheduling chain keeps exactly one event in flight;
        // the slab must not grow with the number of events fired.
        let mut el: EventLoop<u64> = EventLoop::new();
        let mut world = 0u64;
        fn tick(w: &mut u64, el: &mut EventLoop<u64>) {
            *w += 1;
            if *w < 1000 {
                el.after(Dur::from_us(3), tick);
            }
        }
        el.at(SimTime::ZERO, tick);
        el.run_to_completion(&mut world);
        assert_eq!(world, 1000);
        assert_eq!(el.slot_capacity(), 1, "slab grew despite slot reuse");
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut el: EventLoop<u32> = EventLoop::new();
        let mut world = 0u32;
        el.at(SimTime::from_ms(1), |w: &mut u32, _| *w += 1);
        el.at(SimTime::from_ms(5), |w: &mut u32, _| *w += 1);
        let fired = el.run_until(&mut world, SimTime::from_ms(2));
        assert_eq!(fired, 1);
        assert_eq!(world, 1);
        assert_eq!(el.now(), SimTime::from_ms(2));
        assert!(!el.is_empty());
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_past_panics() {
        let mut el: EventLoop<()> = EventLoop::new();
        let mut w = ();
        el.at(SimTime::from_ms(5), |_, _| {});
        el.run_to_completion(&mut w);
        el.at(SimTime::from_ms(1), |_, _| {});
    }

    #[test]
    fn earliest_of_deadlines() {
        assert_eq!(earliest([None, None]), None);
        assert_eq!(
            earliest([None, Some(SimTime::from_us(5)), Some(SimTime::from_us(3))]),
            Some(SimTime::from_us(3))
        );
    }

    #[test]
    #[should_panic(expected = "cascade guard tripped")]
    fn cascade_guard_trips() {
        let mut g = CascadeGuard::new(10);
        for _ in 0..20 {
            g.step(SimTime::from_us(1));
        }
    }

    #[test]
    fn cascade_guard_resets_when_time_moves() {
        let mut g = CascadeGuard::new(2);
        for i in 0..100u64 {
            g.step(SimTime::from_us(i));
            g.step(SimTime::from_us(i));
        }
    }

    struct Ticker {
        period: Dur,
        next: Option<SimTime>,
        count: u32,
        max: u32,
    }

    impl Component for Ticker {
        type Cmd = ();
        type Out = u32;
        fn next_deadline(&self) -> Option<SimTime> {
            self.next
        }
        fn advance(&mut self, now: SimTime, sink: &mut Vec<u32>) {
            if Some(now) == self.next {
                self.count += 1;
                sink.push(self.count);
                self.next = if self.count < self.max {
                    Some(now + self.period)
                } else {
                    None
                };
            }
        }
        fn handle(&mut self, _now: SimTime, _cmd: (), _sink: &mut Vec<u32>) {}
    }

    #[test]
    fn drain_component_walks_deadlines() {
        let mut t = Ticker {
            period: Dur::from_ms(12),
            next: Some(SimTime::from_ms(12)),
            count: 0,
            max: 3,
        };
        let got = drain_component(&mut t, SimTime::from_secs(1));
        assert_eq!(
            got,
            vec![
                (SimTime::from_ms(12), 1),
                (SimTime::from_ms(24), 2),
                (SimTime::from_ms(36), 3)
            ]
        );
    }
}
