//! Thread-parallel sweep runner for independent simulations.
//!
//! Scenario sweeps (ablation grids, capacity scans, seed batteries) run
//! many *independent* single-threaded simulations; this module fans them
//! out over OS threads with `std::thread` alone. Each worker pulls the
//! next item off a shared atomic cursor, so results appear in an
//! arbitrary completion order internally — but they are returned sorted
//! by input index, making the output byte-identical to a sequential
//! `map` regardless of thread count or scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item across `threads` worker threads and returns
/// the results in input order (identical to `items.map(f).collect()`).
///
/// `f` must be deterministic per item for the "byte-identical to
/// sequential" guarantee to mean anything; the simulations it wraps are.
///
/// # Panics
///
/// Propagates a panic from any worker after the sweep unwinds.
pub fn parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                let item = slots[k].lock().expect("unpoisoned slot").take();
                let item = item.expect("each slot is taken exactly once");
                let out = f(item);
                *results[k].lock().expect("unpoisoned result") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(k, m)| {
            m.into_inner()
                .expect("unpoisoned result")
                .unwrap_or_else(|| panic!("sweep item {k} produced no result"))
        })
        .collect()
}

/// A sensible worker count for sweeps: the machine's parallelism, capped
/// so small sweeps don't spawn idle threads.
pub fn default_threads(items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_match_sequential_order() {
        let items: Vec<u64> = (0..97).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 200] {
            let par = parallel_map(items.clone(), threads, |x| x * x + 1);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_sweep_is_fine() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 8, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn non_clone_items_move_through() {
        let items: Vec<String> = (0..20).map(|k| format!("s{k}")).collect();
        let out = parallel_map(items, 4, |s| s.len());
        assert_eq!(out.len(), 20);
        assert_eq!(out[0], 2);
        assert_eq!(out[10], 3);
    }

    #[test]
    fn default_threads_is_positive_and_capped() {
        assert!(default_threads(0) >= 1);
        assert!(default_threads(3) <= 3 || default_threads(3) >= 1);
        assert_eq!(default_threads(1), 1);
    }
}
