//! Thread-parallel sweep runner backed by a persistent worker pool.
//!
//! Scenario sweeps (ablation grids, capacity scans, seed batteries) run
//! many *independent* single-threaded simulations; [`parallel_map`] fans
//! them out over OS threads with `std::thread` alone. Results are
//! returned sorted by input index, making the output byte-identical to a
//! sequential `map` regardless of thread count or scheduling.
//!
//! Earlier revisions spawned a fresh scoped thread per call, so a repro
//! run paid thread start-up once per experiment *and* once per nested
//! sweep inside E11/E13/E14. The pool here is spawned once per process
//! (lazily, sized to the machine) and reused by every call.
//!
//! Two properties keep the pool safe under the workspace's usage:
//!
//! * **The caller participates.** A `parallel_map` call drains the same
//!   work cursor as the pool workers, so it completes even if every pool
//!   worker is busy — in particular, *nested* calls (the repro binary's
//!   outer sweep runs experiments whose inner sweeps call back in) can
//!   never deadlock: the innermost call's caller thread makes progress
//!   by itself in the worst case.
//! * **Panics propagate.** A panicking item is caught on the worker,
//!   ferried back, and re-raised on the calling thread after the batch
//!   settles, matching `std::thread::scope` semantics.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit of pool work: claim-and-run one batch's remaining items.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    jobs: Sender<Job>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        for k in 0..workers {
            let rx: Arc<Mutex<Receiver<Job>>> = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("ctms-sweep-{k}"))
                .spawn(move || loop {
                    let job = {
                        let guard = rx.lock().expect("job queue unpoisoned");
                        guard.recv()
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => break, // sender dropped: process exit
                    }
                })
                .expect("spawn sweep worker");
        }
        Pool { jobs: tx }
    })
}

/// Shared state of one `parallel_map` batch.
struct Batch<T, U> {
    items: Vec<Mutex<Option<T>>>,
    results: Vec<Mutex<Option<U>>>,
    cursor: AtomicUsize,
    /// Items fully processed (result stored or panic recorded).
    done: Mutex<usize>,
    settled: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl<T, U> Batch<T, U> {
    /// Claims items off the cursor and runs `f` on each until the batch
    /// is exhausted. Returns after contributing; does not wait.
    fn drain<F>(&self, f: &F)
    where
        F: Fn(T) -> U,
    {
        let n = self.items.len();
        loop {
            let k = self.cursor.fetch_add(1, Ordering::Relaxed);
            if k >= n {
                break;
            }
            let item = self.items[k]
                .lock()
                .expect("unpoisoned slot")
                .take()
                .expect("each slot is taken exactly once");
            let out = catch_unwind(AssertUnwindSafe(|| f(item)));
            match out {
                Ok(out) => *self.results[k].lock().expect("unpoisoned result") = Some(out),
                Err(payload) => {
                    let mut slot = self.panic.lock().expect("unpoisoned panic slot");
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            let mut done = self.done.lock().expect("unpoisoned done count");
            *done += 1;
            if *done == n {
                self.settled.notify_all();
            }
        }
    }

    fn wait_settled(&self) {
        let n = self.items.len();
        let mut done = self.done.lock().expect("unpoisoned done count");
        while *done < n {
            done = self.settled.wait(done).expect("unpoisoned done count");
        }
    }
}

/// Applies `f` to every item across the persistent worker pool and
/// returns the results in input order (identical to
/// `items.map(f).collect()`).
///
/// `threads` caps how many pool workers are invited to help (the calling
/// thread always participates, so `threads <= 1` degenerates to a
/// sequential map with no synchronization at all). `f` must be
/// deterministic per item for the "byte-identical to sequential"
/// guarantee to mean anything; the simulations it wraps are.
///
/// Nested calls are safe: the caller of every `parallel_map` drains the
/// batch cursor itself, so completion never depends on a pool worker
/// being free.
///
/// # Panics
///
/// Propagates the first panic from any item after the batch settles.
pub fn parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send + 'static,
    U: Send + 'static,
    F: Fn(T) -> U + Send + Sync + 'static,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let batch = Arc::new(Batch {
        items: items.into_iter().map(|t| Mutex::new(Some(t))).collect(),
        results: (0..n).map(|_| Mutex::new(None)).collect(),
        cursor: AtomicUsize::new(0),
        done: Mutex::new(0),
        settled: Condvar::new(),
        panic: Mutex::new(None),
    });
    let f = Arc::new(f);
    // Invite helpers (the caller is one of the `threads` participants).
    for _ in 0..threads - 1 {
        let batch = Arc::clone(&batch);
        let f = Arc::clone(&f);
        let job: Job = Box::new(move || batch.drain(f.as_ref()));
        // A send error means the pool is gone (process teardown); the
        // caller still drains the whole batch itself below.
        let _ = pool().jobs.send(job);
    }
    batch.drain(f.as_ref());
    batch.wait_settled();
    let batch = match Arc::try_unwrap(batch) {
        Ok(b) => b,
        Err(shared) => {
            // A helper still holds a clone (it finished draining but has
            // not dropped its Arc yet). Results are settled either way;
            // copy them out through the shared reference.
            if let Some(payload) = shared.panic.lock().expect("unpoisoned panic slot").take() {
                resume_unwind(payload);
            }
            return (0..n)
                .map(|k| {
                    shared.results[k]
                        .lock()
                        .expect("unpoisoned result")
                        .take()
                        .unwrap_or_else(|| panic!("sweep item {k} produced no result"))
                })
                .collect();
        }
    };
    if let Some(payload) = batch.panic.into_inner().expect("unpoisoned panic slot") {
        resume_unwind(payload);
    }
    batch
        .results
        .into_iter()
        .enumerate()
        .map(|(k, m)| {
            m.into_inner()
                .expect("unpoisoned result")
                .unwrap_or_else(|| panic!("sweep item {k} produced no result"))
        })
        .collect()
}

/// A sensible worker count for sweeps: the machine's parallelism, capped
/// so small sweeps don't invite idle workers.
pub fn default_threads(items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_match_sequential_order() {
        let items: Vec<u64> = (0..97).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 200] {
            let par = parallel_map(items.clone(), threads, |x| x * x + 1);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_sweep_is_fine() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 8, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn non_clone_items_move_through() {
        let items: Vec<String> = (0..20).map(|k| format!("s{k}")).collect();
        let out = parallel_map(items, 4, |s| s.len());
        assert_eq!(out.len(), 20);
        assert_eq!(out[0], 2);
        assert_eq!(out[10], 3);
    }

    #[test]
    fn nested_sweeps_complete() {
        // The repro binary nests: an outer sweep over experiments whose
        // runners call parallel_map themselves. With a fixed pool this
        // deadlocks unless callers participate in draining — so this
        // test over-subscribes on purpose.
        let outer: Vec<u64> = (0..12).collect();
        let result = parallel_map(outer, 8, |k| {
            let inner: Vec<u64> = (0..9).map(|j| k * 100 + j).collect();
            parallel_map(inner, 8, |x| x * 2).iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..12)
            .map(|k| (0..9).map(|j| (k * 100 + j) * 2).sum())
            .collect();
        assert_eq!(result, expect);
    }

    #[test]
    fn pool_is_reused_across_calls() {
        // Consecutive calls must not accumulate threads: everything runs
        // on the one persistent pool. (Smoke check: many batches back to
        // back stay correct; the pool size is process-global.)
        for round in 0..50u64 {
            let items: Vec<u64> = (0..17).collect();
            let out = parallel_map(items, 4, move |x| x + round);
            assert_eq!(out[16], 16 + round, "round {round}");
        }
    }

    #[test]
    fn panics_propagate_to_caller() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_map((0..32u32).collect(), 4, |x| {
                if x == 19 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 19"), "{msg}");
    }

    #[test]
    fn default_threads_is_positive_and_capped() {
        assert!(default_threads(0) >= 1);
        assert!(default_threads(3) <= 3 || default_threads(3) >= 1);
        assert_eq!(default_threads(1), 1);
    }
}
