//! Simulation time.
//!
//! All of the paper's quantities are microsecond-scale (copy costs of
//! 1 µs/byte, 12 ms interrupt periods, 10.9 ms transfer latencies), but the
//! logic-analyzer measurements in §5.2.2 resolve 500 ns variations, so the
//! simulation clock is kept in integer **nanoseconds**. A `u64` nanosecond
//! clock wraps after ~584 years of simulated time; the longest run the paper
//! reports is 117 minutes.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far"
    /// deadline sentinel in a few schedulers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the start of the run (truncating).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Microseconds since the start of the run, as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the start of the run, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`; time deltas in the simulator are
    /// always taken forward, so a reversed pair indicates a scheduler bug.
    pub fn since(self, earlier: SimTime) -> Dur {
        match self.0.checked_sub(earlier.0) {
            Some(d) => Dur(d),
            None => panic!(
                "SimTime::since: earlier ({}) is after self ({})",
                SimTime(earlier.0),
                self
            ),
        }
    }

    /// The span from `earlier` to `self`, or `None` if `earlier` is later.
    pub fn checked_since(self, earlier: SimTime) -> Option<Dur> {
        self.0.checked_sub(earlier.0).map(Dur)
    }

    /// Saturating addition of a span.
    pub fn saturating_add(self, d: Dur) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Rounds this instant down to a multiple of `quantum`, modelling a
    /// coarse-grained clock read (e.g. the 122 µs AOS clock of §5.2.1 or the
    /// 2 µs PC/AT clock of §5.2.3).
    pub fn quantize(self, quantum: Dur) -> SimTime {
        assert!(quantum.0 > 0, "quantize: zero quantum");
        SimTime(self.0 - self.0 % quantum.0)
    }
}

impl Dur {
    /// The zero-length span.
    pub const ZERO: Dur = Dur(0);
    /// The largest representable span.
    pub const MAX: Dur = Dur(u64::MAX);

    /// Creates a span from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Dur(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Dur(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * 1_000_000_000)
    }

    /// Creates a span from fractional microseconds, rounding to the nearest
    /// nanosecond. Negative or non-finite inputs clamp to zero.
    pub fn from_us_f64(us: f64) -> Self {
        if !us.is_finite() || us <= 0.0 {
            return Dur(0);
        }
        Dur((us * 1_000.0).round() as u64)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Dur(0);
        }
        Dur((s * 1_000_000_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Microseconds, as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative float, rounding to the nearest
    /// nanosecond. Used for bus-contention slowdown factors.
    pub fn mul_f64(self, k: f64) -> Dur {
        assert!(k.is_finite() && k >= 0.0, "Dur::mul_f64: bad factor {k}");
        Dur((self.0 as f64 * k).round() as u64)
    }

    /// The span per byte for a transfer of `bytes` bytes taking `self`.
    pub fn div_u64(self, n: u64) -> Dur {
        assert!(n > 0, "Dur::div_u64: divide by zero");
        Dur(self.0 / n)
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<Dur> for SimTime {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Dur> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Dur) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_add(rhs.0).expect("Dur overflow"))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("Dur underflow"))
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.checked_mul(rhs).expect("Dur overflow"))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Div for Dur {
    type Output = u64;
    fn div(self, rhs: Dur) -> u64 {
        assert!(rhs.0 > 0, "Dur division by zero span");
        self.0 / rhs.0
    }
}

impl Rem for Dur {
    type Output = Dur;
    fn rem(self, rhs: Dur) -> Dur {
        assert!(rhs.0 > 0, "Dur remainder by zero span");
        Dur(self.0 % rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

/// Formats nanoseconds with a human-scale unit: exact multiples print as
/// integers; anything else prints with three significant decimals at the
/// largest fitting unit.
fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns == 0 {
        write!(f, "0ns")
    } else if ns.is_multiple_of(1_000_000_000) {
        write!(f, "{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        write!(f, "{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        write!(f, "{}us", ns / 1_000)
    } else if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{}ns", ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_us(5).as_ns(), 5_000);
        assert_eq!(SimTime::from_ms(12).as_us(), 12_000);
        assert_eq!(SimTime::from_secs(2).as_ns(), 2_000_000_000);
        assert_eq!(Dur::from_ms(3).as_us_f64(), 3_000.0);
        assert_eq!(Dur::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_us(10) + Dur::from_us(5);
        assert_eq!(t, SimTime::from_us(15));
        assert_eq!(t.since(SimTime::from_us(10)), Dur::from_us(5));
        assert_eq!(t - Dur::from_us(15), SimTime::ZERO);
        assert_eq!(Dur::from_us(4) * 3, Dur::from_us(12));
        assert_eq!(Dur::from_us(12) / 4, Dur::from_us(3));
        assert_eq!(Dur::from_us(12) / Dur::from_us(5), 2);
        assert_eq!(Dur::from_us(12) % Dur::from_us(5), Dur::from_us(2));
    }

    #[test]
    #[should_panic(expected = "SimTime::since")]
    fn since_panics_backwards() {
        let _ = SimTime::from_us(1).since(SimTime::from_us(2));
    }

    #[test]
    fn checked_since_backwards_is_none() {
        assert_eq!(SimTime::from_us(1).checked_since(SimTime::from_us(2)), None);
        assert_eq!(
            SimTime::from_us(2).checked_since(SimTime::from_us(1)),
            Some(Dur::from_us(1))
        );
    }

    #[test]
    fn quantize_models_coarse_clock() {
        // The 122 µs AOS clock of §5.2.1.
        let q = Dur::from_us(122);
        assert_eq!(SimTime::from_us(0).quantize(q), SimTime::from_us(0));
        assert_eq!(SimTime::from_us(121).quantize(q), SimTime::from_us(0));
        assert_eq!(SimTime::from_us(122).quantize(q), SimTime::from_us(122));
        assert_eq!(SimTime::from_us(365).quantize(q), SimTime::from_us(244));
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(Dur::from_ns(1000).mul_f64(1.5), Dur::from_ns(1500));
        assert_eq!(Dur::from_ns(3).mul_f64(0.5), Dur::from_ns(2)); // 1.5 rounds to 2
        assert_eq!(Dur::from_ns(100).mul_f64(0.0), Dur::ZERO);
    }

    #[test]
    fn from_f64_clamps() {
        assert_eq!(Dur::from_us_f64(-3.0), Dur::ZERO);
        assert_eq!(Dur::from_us_f64(f64::NAN), Dur::ZERO);
        assert_eq!(Dur::from_us_f64(1.5), Dur::from_ns(1500));
        assert_eq!(Dur::from_secs_f64(0.25), Dur::from_ms(250));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Dur::from_ns(7)), "7ns");
        assert_eq!(format!("{}", Dur::from_us(7)), "7us");
        assert_eq!(format!("{}", Dur::from_ms(7)), "7ms");
        assert_eq!(format!("{}", Dur::from_secs(7)), "7s");
        assert_eq!(format!("{}", SimTime::from_ms(12)), "12ms");
        // Non-round values use three decimals at the largest fitting unit.
        assert_eq!(format!("{}", Dur::from_ns(25_586_595)), "25.587ms");
        assert_eq!(format!("{}", Dur::from_ns(1_234)), "1.234us");
        assert_eq!(format!("{}", Dur::from_ns(1_234_567_890)), "1.235s");
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::MAX.saturating_add(Dur::from_ns(5)), SimTime::MAX);
        assert_eq!(Dur::from_us(1).saturating_sub(Dur::from_us(2)), Dur::ZERO);
    }
}
