//! Conservative parallel execution: the sharded scheduler.
//!
//! [`crate::bus::Harness`] services one global deadline heap on one
//! thread. [`ShardedHarness`] partitions the node set into **shards**
//! (the caller supplies the partition — `ctms-core` derives one shard
//! per contiguous block of rings) and runs each shard's indexed heap on
//! a worker of the persistent [`crate::sweep`] pool, synchronizing with
//! a classic bounded-time-window (conservative, YAWNS-style) protocol:
//!
//! * A small set of nodes is declared **sync-class** at registration —
//!   in `ctms-core` these are the bridges whose two rings landed in
//!   different shards. Only sync nodes are ever allowed to emit
//!   commands that cross a shard boundary, and only at instants the
//!   harness has made globally consistent.
//! * Let `T` be the earliest deadline anywhere and `B` the earliest
//!   deadline of any sync node. If `B > T`, every shard may run
//!   **independently** over the window `[T, min(B, T + L))` where `L`
//!   is the caller-supplied **lookahead**: a lower bound on the time
//!   between a command entering a sync node and any consequence
//!   emerging from it (for a bridge, its fixed forwarding latency).
//!   Nothing a shard does inside the window can affect another shard
//!   before the window closes, so the shards' interleaving is
//!   irrelevant — the result is the one a single thread would compute.
//! * If `B == T`, the harness runs a **sync instant**: every shard due
//!   at `T` advances, and cross-shard commands are exchanged through
//!   per-destination mailboxes, merged in [`MailKey`] order
//!   (`(time, src_shard, seq)` — a total order, so delivery is
//!   deterministic no matter which worker finished first), in repeated
//!   rounds until no mail is in flight.
//!
//! Determinism is the contract: parallel execution may change the wall
//! clock, never the answer. The `ctms-bench` `perf` binary asserts
//! bit-identical ground truth before it times anything, and the tier-1
//! `sharded_harness_shares_the_golden_truth` test pins byte-identical
//! telemetry JSON against the single-threaded golden digests.
//!
//! A shard that emits a cross-shard command *outside* a sync instant
//! has violated the lookahead contract (the partition put tightly
//! coupled nodes in different shards); the harness poisons itself with
//! a typed [`CascadeError::CrossShard`] rather than silently diverging
//! from single-threaded truth.

use crate::bus::{CascadeError, CmdSink, NodeId, Router, SpeculationFault, DEFAULT_CASCADE_LIMIT};
use crate::engine::Component;
use crate::heap::IndexedHeap;
use crate::persist::{ChunkedReader, ChunkedWriter, Dec, Enc, Persist, PersistError, Rollback};
use crate::sweep::parallel_map;
use crate::telemetry::Registry;
use crate::time::{Dur, SimTime};
use std::sync::Arc;

/// Merge key of one cross-shard command: commands are delivered in
/// ascending `(at, src_shard, seq)` order. `seq` is a per-source-shard
/// monotonic counter, so keys are globally unique and the order is
/// total — two runs (or two thread schedules) always deliver the same
/// mail in the same order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MailKey {
    /// The instant the command was emitted (and is delivered).
    pub at: SimTime,
    /// The emitting shard.
    pub src_shard: u32,
    /// Emission sequence number within the source shard.
    pub seq: u64,
}

/// Sorts a merged mailbox into delivery order.
///
/// The sort is **stable** on the full [`MailKey`], so entries with
/// equal keys (impossible in the engine — `seq` is unique per source —
/// but representable) keep their push order; the property test in this
/// module enumerates permutations to pin both totality and stability.
pub fn merge_mail<T>(mail: &mut [(MailKey, T)]) {
    mail.sort_by_key(|m| m.0);
}

/// Per-shard execution counters, published under `sched.shard{k}` by
/// [`ShardedHarness::exec_telemetry`]. Kept out of the simulation's own
/// registry so the telemetry tree stays byte-identical to
/// single-threaded execution (golden digests must not depend on the
/// shard count).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Windows in which this shard advanced at least one node.
    pub window_advances: u64,
    /// Windows this shard sat out (no deadline inside the window).
    pub idle_windows: u64,
    /// Cross-shard commands this shard emitted.
    pub mailbox_sent: u64,
    /// Cross-shard commands this shard received.
    pub mailbox_recv: u64,
    /// Component activations (advances + delivered commands) serviced.
    pub events: u64,
}

/// One cross-shard command in flight: key, then `(dst, cmd)` payload —
/// shaped so the engine merges through the same [`merge_mail`] the
/// property tests pin.
type Mail<Cmd> = (MailKey, (NodeId, Cmd));

/// Which synchronization protocol the coordinator runs.
///
/// Both modes are bit-identical to the single-threaded harness (and to
/// each other) — the tier-1 parity tests pin it. They differ only in
/// how many barriers the coordinator erects:
///
/// * [`WindowMode::Adaptive`] (the default) derives each shard's window
///   end from a per-edge influence fixpoint over every shard's
///   published deadlines, lets sync-class nodes emit cross-shard mail
///   *inside* windows (delivered when the receiving shard reaches the
///   emission instant), and only falls back to a global sync instant
///   when no shard can make progress. Globally quiet stretches are
///   skipped in one hop, so `sched.windows` / `sched.sync_instants`
///   collapse on sparse workloads.
/// * [`WindowMode::FixedLookahead`] is the classic bounded-window
///   protocol this module started with — every window ends at
///   `base + L` and every cross-shard command waits for a sync instant.
///   Kept as the ablation baseline the adaptive mode is measured (and
///   parity-tested) against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WindowMode {
    /// Influence-fixpoint windows with in-window sync emission.
    #[default]
    Adaptive,
    /// Classic `base + L` windows; cross mail only at sync instants.
    FixedLookahead,
}

/// Which execution discipline the coordinator runs the shards under.
///
/// Both are bit-identical to the single-threaded harness — the golden
/// parity tests hold optimistic execution to the same digests as the
/// conservative modes at every shard and thread count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Shards never execute an instant another shard could still
    /// affect ([`WindowMode`] selects the conservative protocol).
    #[default]
    Conservative,
    /// Time-Warp-style speculation: shards run past their conservative
    /// bound, snapshotting local state at a configurable event cadence
    /// and rolling back when a cross-shard command arrives behind the
    /// local clock. Outbound mail from speculative instants is staged
    /// and only released once the emitting instant commits, so no
    /// anti-messages are ever needed; a per-round GVT reduction
    /// fossil-collects dead snapshots.
    Optimistic,
}

/// Cross-shard emission policy for one cascade, by protocol phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Cross {
    /// Conservative fixed window: any cross-shard command is a
    /// protocol violation.
    Forbid,
    /// Adaptive window: sync-class sources may emit to the outbox
    /// (their lookahead contract bounds when the mail can matter);
    /// anything else is the same protocol violation.
    SyncOnly,
    /// Sync instant: every cross-shard command goes to the outbox.
    Allow,
    /// Optimistic window: sync-class sources stage cross-shard mail in
    /// the speculative outbox, released by the coordinator only once
    /// the emitting instant commits. Re-emissions below the released
    /// floor during rollback replay are dropped as duplicates.
    Stage,
}

/// One pre-image snapshot taken by an optimistically executing shard:
/// everything needed to rewind the shard to the state it had just
/// before executing instant `time`.
#[derive(Clone, Copy)]
struct Segment {
    /// First speculative instant covered by this segment.
    time: SimTime,
    /// Shard clock before `time` executed.
    now_before: SimTime,
    seq_before: u64,
    events_before: u64,
    /// Delivered-mail cursor into `pending` at segment open.
    pcur_before: usize,
    /// Mailbox counters at segment open (window/idle counters are
    /// coordinator-side bookkeeping and never rewind).
    sent_before: u64,
    recv_before: u64,
    /// This segment's slice of `seg_entries` starts here.
    entries_start: u32,
    /// Router pre-image location in the arena; `router_start` doubles
    /// as the arena watermark for the whole segment (the router image
    /// is the first thing appended after the segment opens).
    router_start: u32,
    router_end: u32,
    /// Events executed while this was the open segment.
    events_in: u64,
    /// `seg_stamp` epoch for per-node pre-image dedup.
    epoch: u64,
}

/// One shard: a slice of the node set with its own heap, router, and
/// the same reusable scratch buffers as [`crate::bus::Harness`]. Moves
/// wholesale between the coordinating thread and pool workers.
struct ShardState<C: Component, R> {
    idx: u32,
    /// Nodes local to this shard, in global registration order.
    nodes: Vec<C>,
    /// Local index → global [`NodeId`] (routers speak global ids).
    global_ids: Vec<NodeId>,
    /// Local index → is this a sync-class node?
    sync_local: Vec<bool>,
    router: R,
    /// All local nodes, keyed by local index.
    heap: IndexedHeap,
    /// Sync-class nodes only, keyed by local index; `B` comes from here.
    sync_heap: IndexedHeap,
    /// Global node id → (shard, local index), shared by every shard.
    owner: Arc<Vec<(u32, u32)>>,
    now: SimTime,
    limit: u32,
    failed: Option<CascadeError>,
    dirty: Vec<usize>,
    events: u64,
    stats: ShardStats,
    /// Outgoing mail per destination shard, drained by the coordinator.
    outbox: Vec<Vec<Mail<C::Cmd>>>,
    /// Incoming mail, filled (pre-sorted) by the coordinator.
    inbox: Vec<Mail<C::Cmd>>,
    /// Adaptive-mode incoming mail not yet due: kept sorted in
    /// [`MailKey`] order, delivered when the shard's clock reaches each
    /// entry's emission instant. Always empty in fixed mode.
    pending: Vec<Mail<C::Cmd>>,
    seq: u64,
    /// This shard's end for the current conservative window, set by the
    /// coordinator right before dispatch (a field rather than a closure
    /// capture so per-shard windows stay allocation-free).
    w_end: SimTime,
    // Reusable hot-path buffers, exactly as in `Harness`.
    due: Vec<usize>,
    touched: Vec<usize>,
    wave: Vec<(NodeId, C::Out)>,
    next_wave: Vec<(NodeId, C::Out)>,
    out_buf: Vec<C::Out>,
    cmds: CmdSink<C::Cmd>,
    batch: Vec<C::Out>,
    /// Per-node visit stamps for O(1) dedup in `reschedule_touched`.
    stamp: Vec<u64>,
    epoch: u64,
    // --- Optimistic (Time-Warp) state; empty/zero under conservative
    // execution and between speculative episodes. ---
    /// Instants strictly below this are committed everywhere: staged
    /// mail below it was already released, so re-emissions during
    /// rollback replay are dropped as duplicates.
    released_floor: SimTime,
    /// Start of the speculative region of the current window (the
    /// shard's conservative bound); instants at or past it are logged.
    spec_begin: SimTime,
    /// True while executing an instant with segment logging active
    /// (checked by `cascade` before mutating a local node).
    log_active: bool,
    /// Open snapshot segments, oldest first, `time`-sorted.
    segs: Vec<Segment>,
    /// `(local node, arena start, arena end)` pre-image entries, in
    /// save order, partitioned by the segments' `entries_start`.
    seg_entries: Vec<(u32, u32, u32)>,
    /// Pre-image byte arena shared by all open segments; reused across
    /// episodes so the speculative steady state stays allocation-free.
    arena: Vec<u8>,
    /// Scratch encoder for one pre-image at a time.
    scratch: Enc,
    /// Per-node dedup stamps: one pre-image per node per segment.
    seg_stamp: Vec<u64>,
    seg_epoch: u64,
    /// Crossing log: one `(instant, sync-peek before the instant)`
    /// entry per executed speculative instant. `xlog[0]` defines the
    /// shard's committed view; empty means the shard is live.
    xlog: Vec<(SimTime, Option<SimTime>)>,
    /// Cursor into `pending`: entries before it were delivered but are
    /// kept (and re-delivered by cloning) for rollback replay.
    pcur: usize,
    /// Staged speculative mail per destination shard, released by the
    /// coordinator once the emitting instant commits.
    spec_outbox: Vec<Vec<Mail<C::Cmd>>>,
    /// Events between snapshots (distributed by the coordinator).
    cadence: u64,
    rollbacks: u64,
    rolled_back_events: u64,
    snapshot_bytes: u64,
}

impl<C, R> ShardState<C, R>
where
    C: Component + Persist,
    C::Cmd: Clone,
    R: Router<C> + Rollback,
{
    fn new(idx: u32, router: R, limit: u32, n_shards: usize) -> Self {
        ShardState {
            idx,
            nodes: Vec::new(),
            global_ids: Vec::new(),
            sync_local: Vec::new(),
            router,
            heap: IndexedHeap::new(),
            sync_heap: IndexedHeap::new(),
            owner: Arc::new(Vec::new()),
            now: SimTime::ZERO,
            limit,
            failed: None,
            dirty: Vec::new(),
            events: 0,
            stats: ShardStats::default(),
            outbox: (0..n_shards).map(|_| Vec::new()).collect(),
            inbox: Vec::new(),
            pending: Vec::new(),
            seq: 0,
            w_end: SimTime::ZERO,
            due: Vec::new(),
            touched: Vec::new(),
            wave: Vec::new(),
            next_wave: Vec::new(),
            out_buf: Vec::new(),
            cmds: CmdSink::new(),
            batch: Vec::new(),
            stamp: Vec::new(),
            epoch: 0,
            released_floor: SimTime::ZERO,
            spec_begin: SimTime::ZERO,
            log_active: false,
            segs: Vec::new(),
            seg_entries: Vec::new(),
            arena: Vec::new(),
            scratch: Enc::new(),
            seg_stamp: Vec::new(),
            seg_epoch: 0,
            xlog: Vec::new(),
            pcur: 0,
            spec_outbox: (0..n_shards).map(|_| Vec::new()).collect(),
            cadence: 256,
            rollbacks: 0,
            rolled_back_events: 0,
            snapshot_bytes: 0,
        }
    }

    fn add_node(&mut self, node: C, global: NodeId, sync: bool) -> u32 {
        let local = self.nodes.len();
        self.nodes.push(node);
        self.global_ids.push(global);
        self.sync_local.push(sync);
        self.stamp.push(0);
        self.seg_stamp.push(0);
        self.reschedule(local);
        local as u32
    }

    /// True when any registered node is sync-class.
    fn has_sync_nodes(&self) -> bool {
        self.sync_local.iter().any(|&b| b)
    }

    /// Syncs both heaps with the node's current deadline.
    fn reschedule(&mut self, local: usize) {
        let at = self.nodes[local].next_deadline();
        self.heap.set(local, at);
        if self.sync_local[local] {
            self.sync_heap.set(local, at);
        }
    }

    /// Re-syncs the heaps for every node in `touched`, deduplicated by
    /// epoch stamp in O(len) — same scheme (and same order-independence
    /// argument) as `Harness::reschedule_touched`.
    fn reschedule_touched(&mut self) {
        self.epoch += 1;
        let epoch = self.epoch;
        for i in 0..self.touched.len() {
            let l = self.touched[i];
            if self.stamp[l] != epoch {
                self.stamp[l] = epoch;
                self.reschedule(l);
            }
        }
        self.touched.clear();
    }

    fn flush_dirty(&mut self) {
        while let Some(l) = self.dirty.pop() {
            self.reschedule(l);
        }
    }

    /// Earliest local deadline.
    fn peek(&self) -> Option<SimTime> {
        self.heap.peek().map(|(at, _)| at)
    }

    /// Earliest local sync-node deadline.
    fn peek_sync(&self) -> Option<SimTime> {
        self.sync_heap.peek().map(|(at, _)| at)
    }

    /// Emission instant of the earliest undelivered pending mail
    /// (adaptive mode; the pending queue is kept sorted).
    fn peek_pending(&self) -> Option<SimTime> {
        self.pending.first().map(|m| m.0.at)
    }

    /// Fills `due` with every local node scheduled at or before `t`, in
    /// local (= global registration) order, keeping the sync heap
    /// coherent.
    fn pop_due(&mut self, t: SimTime) {
        self.due.clear();
        while let Some((at, l)) = self.heap.peek() {
            if at > t {
                break;
            }
            self.heap.pop();
            if self.sync_local[l] {
                self.sync_heap.set(l, None);
            }
            self.due.push(l);
        }
    }

    /// Routes `wave` breadth-first at `now` until it drains, entering
    /// the router in runs of consecutive same-source events (the same
    /// batching — and the same bit-identity argument — as
    /// `Harness::cascade`). Local commands are delivered immediately;
    /// cross-shard commands follow the [`Cross`] policy: outbox at sync
    /// instants, outbox for sync-class sources inside adaptive windows,
    /// protocol violation otherwise.
    fn cascade(&mut self, now: SimTime, cross: Cross) -> Result<(), CascadeError> {
        let mut steps = 0u32;
        while !self.wave.is_empty() {
            steps += 1;
            if steps > self.limit {
                let err = CascadeError::overflow(now, self.wave[0].0, steps);
                self.failed = Some(err);
                self.wave.clear();
                self.next_wave.clear();
                self.cmds.clear();
                return Err(err);
            }
            let mut wave = std::mem::take(&mut self.wave);
            let mut iter = wave.drain(..).peekable();
            while let Some((src, event)) = iter.next() {
                debug_assert!(self.cmds.is_empty());
                match iter.peek() {
                    Some((s, _)) if *s == src => {
                        debug_assert!(self.batch.is_empty());
                        self.batch.push(event);
                        while let Some((s, _)) = iter.peek() {
                            if *s != src {
                                break;
                            }
                            let (_, e) = iter.next().expect("peeked entry");
                            self.batch.push(e);
                        }
                        self.router
                            .route_all(now, src, &mut self.batch, &mut self.cmds);
                        self.batch.clear();
                    }
                    // Singleton run — the common case on sparse
                    // workloads — skips the batch buffer entirely.
                    _ => self.router.route(now, src, event, &mut self.cmds),
                }
                // Move the sink out for the drain so pre-image saves
                // (which take `&mut self`) can interleave; capacity is
                // restored afterwards.
                let mut cmds = std::mem::take(&mut self.cmds);
                for (dst, cmd) in cmds.drain() {
                    let (os, ol) = self.owner[dst.0];
                    if os == self.idx {
                        let ol = ol as usize;
                        if self.log_active {
                            self.save_node_pre(ol);
                        }
                        self.events += 1;
                        self.nodes[ol].handle(now, cmd, &mut self.out_buf);
                        self.touched.push(ol);
                        for e in self.out_buf.drain(..) {
                            self.next_wave.push((dst, e));
                        }
                    } else {
                        let sync_src = match cross {
                            Cross::Allow => true,
                            Cross::SyncOnly | Cross::Stage => {
                                let (_, sl) = self.owner[src.0];
                                self.sync_local[sl as usize]
                            }
                            Cross::Forbid => false,
                        };
                        if sync_src {
                            self.seq += 1;
                            self.stats.mailbox_sent += 1;
                            let mail = (
                                MailKey {
                                    at: now,
                                    src_shard: self.idx,
                                    seq: self.seq,
                                },
                                (dst, cmd),
                            );
                            if cross == Cross::Stage {
                                // Staged for release at commit. A replay
                                // re-emission below the released floor
                                // already reached its receiver — drop it
                                // (the counter still ticks: the restore
                                // of `sent_before` un-counted it).
                                if now >= self.released_floor {
                                    self.spec_outbox[os as usize].push(mail);
                                }
                            } else {
                                self.outbox[os as usize].push(mail);
                            }
                        } else {
                            // The partition split tightly coupled nodes
                            // or the lookahead overstates the link
                            // latency: a typed error, not a process kill.
                            self.failed = Some(CascadeError::CrossShard {
                                at: now,
                                src,
                                dst,
                                src_shard: self.idx,
                                dst_shard: os,
                            });
                            break;
                        }
                    }
                }
                self.cmds = cmds; // keep the capacity
                if self.failed.is_some() {
                    break;
                }
            }
            drop(iter);
            self.wave = wave;
            if let Some(err) = self.failed {
                self.wave.clear();
                self.next_wave.clear();
                self.cmds.clear();
                self.batch.clear();
                return Err(err);
            }
            std::mem::swap(&mut self.wave, &mut self.next_wave);
        }
        Ok(())
    }

    /// Runs every local deadline strictly before `w_end`, with
    /// cross-shard emission forbidden (the conservative window body).
    fn run_window(&mut self, w_end: SimTime) {
        if self.failed.is_some() {
            return;
        }
        while let Some((t, _)) = self.heap.peek() {
            if t >= w_end {
                break;
            }
            debug_assert!(t >= self.now, "shard time went backwards");
            self.now = t;
            self.pop_due(t);
            self.touched.clear();
            self.touched.extend_from_slice(&self.due);
            debug_assert!(self.wave.is_empty() && self.out_buf.is_empty());
            for i in 0..self.due.len() {
                let l = self.due[i];
                self.events += 1;
                self.nodes[l].advance(t, &mut self.out_buf);
                for e in self.out_buf.drain(..) {
                    self.wave.push((self.global_ids[l], e));
                }
            }
            let result = self.cascade(t, Cross::Forbid);
            self.reschedule_touched();
            if result.is_err() {
                return;
            }
        }
    }

    /// Runs every local instant — heap deadlines *and* pending mail —
    /// strictly before `w_end` (the adaptive window body). At each
    /// instant, due nodes advance first and mail emitted at that
    /// instant is delivered after them, matching the sync-instant
    /// ordering (due round, then mailbox rounds); the loop re-enters
    /// the same instant if either phase schedules new work at it.
    /// Sync-class nodes may emit cross-shard mail throughout.
    fn run_adaptive_window(&mut self, w_end: SimTime) {
        if self.failed.is_some() {
            return;
        }
        loop {
            let next = crate::engine::earliest([self.peek(), self.peek_pending()]);
            let Some(t) = next else { break };
            if t >= w_end {
                break;
            }
            assert!(
                t >= self.now,
                "sharded scheduler protocol violation: cross-shard mail at {t} arrived behind \
                 shard {} clock {} — the adaptive window bound admitted a causality miss",
                self.idx,
                self.now
            );
            self.now = t;
            if self.heap.peek().is_some_and(|(at, _)| at == t) {
                self.pop_due(t);
                self.touched.clear();
                self.touched.extend_from_slice(&self.due);
                debug_assert!(self.wave.is_empty() && self.out_buf.is_empty());
                for i in 0..self.due.len() {
                    let l = self.due[i];
                    self.events += 1;
                    self.nodes[l].advance(t, &mut self.out_buf);
                    for e in self.out_buf.drain(..) {
                        self.wave.push((self.global_ids[l], e));
                    }
                }
                let result = self.cascade(t, Cross::SyncOnly);
                self.reschedule_touched();
                if result.is_err() {
                    return;
                }
            }
            if self.deliver_due_pending(t, Cross::SyncOnly).is_err() {
                return;
            }
        }
    }

    /// Advances every local node due at exactly `t` (the sync instant's
    /// opening round); cross-shard commands go to the outbox.
    fn run_sync_due(&mut self, t: SimTime) {
        if self.failed.is_some() {
            return;
        }
        debug_assert!(t >= self.now, "shard time went backwards");
        self.now = t;
        self.pop_due(t);
        self.touched.clear();
        self.touched.extend_from_slice(&self.due);
        debug_assert!(self.wave.is_empty() && self.out_buf.is_empty());
        for i in 0..self.due.len() {
            let l = self.due[i];
            self.events += 1;
            self.nodes[l].advance(t, &mut self.out_buf);
            for e in self.out_buf.drain(..) {
                self.wave.push((self.global_ids[l], e));
            }
        }
        let _ = self.cascade(t, Cross::Allow);
        self.reschedule_touched();
        // Adaptive fallback: pending mail emitted exactly at `t` joins
        // the sync instant (a no-op in fixed mode — pending stays empty).
        let _ = self.deliver_due_pending(t, Cross::Allow);
    }

    /// Delivers every pending-mail entry emitted at or before `t` (a
    /// sorted prefix), routing the fallout under `cross`. Capacity is
    /// retained; the not-yet-due tail stays queued.
    fn deliver_due_pending(&mut self, t: SimTime, cross: Cross) -> Result<(), CascadeError> {
        if self.failed.is_some() {
            return Ok(()); // failure already recorded by the cascade
        }
        let end = self.pending.iter().take_while(|m| m.0.at <= t).count();
        if end == 0 {
            return Ok(());
        }
        debug_assert!(self.wave.is_empty() && self.out_buf.is_empty());
        self.stats.mailbox_recv += end as u64;
        self.touched.clear();
        let mut pending = std::mem::take(&mut self.pending);
        for (_key, (dst, cmd)) in pending.drain(..end) {
            let (os, ol) = self.owner[dst.0];
            debug_assert_eq!(os, self.idx, "mail delivered to the wrong shard");
            let ol = ol as usize;
            self.events += 1;
            self.nodes[ol].handle(t, cmd, &mut self.out_buf);
            self.touched.push(ol);
            for e in self.out_buf.drain(..) {
                self.wave.push((dst, e));
            }
        }
        self.pending = pending; // keep the capacity (and the tail)
        let result = self.cascade(t, cross);
        self.reschedule_touched();
        result
    }

    /// Delivers the (pre-sorted) inbox at `t` and routes the fallout;
    /// further cross-shard commands go back to the outbox for the next
    /// exchange round.
    fn deliver_inbox(&mut self, t: SimTime) {
        if self.failed.is_some() {
            self.inbox.clear();
            return;
        }
        debug_assert!(self.wave.is_empty() && self.out_buf.is_empty());
        self.stats.mailbox_recv += self.inbox.len() as u64;
        self.touched.clear();
        let mut inbox = std::mem::take(&mut self.inbox);
        for (_key, (dst, cmd)) in inbox.drain(..) {
            let (os, ol) = self.owner[dst.0];
            debug_assert_eq!(os, self.idx, "mail delivered to the wrong shard");
            let ol = ol as usize;
            self.events += 1;
            self.nodes[ol].handle(t, cmd, &mut self.out_buf);
            self.touched.push(ol);
            for e in self.out_buf.drain(..) {
                self.wave.push((dst, e));
            }
        }
        self.inbox = inbox; // keep the capacity
        let _ = self.cascade(t, Cross::Allow);
        self.reschedule_touched();
    }

    // ------------------------------------------------------------------
    // Optimistic (Time-Warp) execution. Speculative instants are
    // covered by pre-image segments: before a node (or the router) is
    // first mutated under an open segment, its canonical image is
    // appended to the shared arena, so rollback cost scales with the
    // state *dirtied* since the snapshot, not the topology size.
    // ------------------------------------------------------------------

    /// Opens a new snapshot segment whose first covered instant is `t`.
    /// Captures the scalar machine state and the router pre-image; node
    /// pre-images follow lazily as nodes are first touched.
    fn open_segment(&mut self, t: SimTime) {
        let entries_start = self.seg_entries.len() as u32;
        let router_start = self.arena.len() as u32;
        self.scratch.clear();
        self.router.save(&mut self.scratch);
        self.arena.extend_from_slice(self.scratch.as_bytes());
        let router_end = self.arena.len() as u32;
        self.snapshot_bytes += u64::from(router_end - router_start);
        self.seg_epoch += 1;
        self.segs.push(Segment {
            time: t,
            now_before: self.now,
            seq_before: self.seq,
            events_before: self.events,
            pcur_before: self.pcur,
            sent_before: self.stats.mailbox_sent,
            recv_before: self.stats.mailbox_recv,
            entries_start,
            router_start,
            router_end,
            events_in: 0,
            epoch: self.seg_epoch,
        });
    }

    /// Saves `local`'s pre-image into the open segment (once per node
    /// per segment, deduplicated by epoch stamp).
    fn save_node_pre(&mut self, local: usize) {
        let epoch = self.segs.last().expect("segment open").epoch;
        if self.seg_stamp[local] == epoch {
            return;
        }
        self.seg_stamp[local] = epoch;
        let start = self.arena.len() as u32;
        self.scratch.clear();
        self.nodes[local].save(&mut self.scratch);
        self.arena.extend_from_slice(self.scratch.as_bytes());
        let end = self.arena.len() as u32;
        self.snapshot_bytes += u64::from(end - start);
        self.seg_entries.push((local as u32, start, end));
    }

    /// Rewinds the shard to the latest snapshot at or before
    /// `straggler` (the newest segment whose first instant is ≤ it;
    /// when even the oldest segment starts past the straggler, the
    /// oldest is applied — it restores state from before anything
    /// speculative executed). Deterministic replay then re-derives
    /// every rolled-back instant.
    fn rollback_to(&mut self, straggler: SimTime) {
        debug_assert!(!self.segs.is_empty(), "rollback without a snapshot");
        let i = self
            .segs
            .partition_point(|s| s.time <= straggler)
            .saturating_sub(1);
        // Node pre-images, newest segment first: each node's oldest
        // image (its state when segs[i] opened) is applied last.
        for si in (i..self.segs.len()).rev() {
            let lo = self.segs[si].entries_start as usize;
            let hi = if si + 1 < self.segs.len() {
                self.segs[si + 1].entries_start as usize
            } else {
                self.seg_entries.len()
            };
            for ei in lo..hi {
                let (local, start, end) = self.seg_entries[ei];
                let mut dec = Dec::new(&self.arena[start as usize..end as usize]);
                self.nodes[local as usize]
                    .rollback(&mut dec)
                    .expect("in-process rollback image round-trips");
                self.touched.push(local as usize);
            }
        }
        let seg = self.segs[i];
        {
            let mut dec = Dec::new(&self.arena[seg.router_start as usize..seg.router_end as usize]);
            self.router
                .rollback(&mut dec)
                .expect("in-process rollback image round-trips");
        }
        let cut = seg.time;
        self.rollbacks += 1;
        self.rolled_back_events += self.events - seg.events_before;
        self.now = seg.now_before;
        self.seq = seg.seq_before;
        self.events = seg.events_before;
        self.pcur = seg.pcur_before;
        self.stats.mailbox_sent = seg.sent_before;
        self.stats.mailbox_recv = seg.recv_before;
        // Un-released staged mail from the rolled-back region is
        // discarded; replay regenerates it.
        for out in &mut self.spec_outbox {
            out.retain(|m| m.0.at < cut);
        }
        let keep = self.xlog.partition_point(|e| e.0 < cut);
        self.xlog.truncate(keep);
        self.seg_entries.truncate(seg.entries_start as usize);
        self.arena.truncate(seg.router_start as usize);
        self.segs.truncate(i);
        self.reschedule_touched();
    }

    /// GVT promotion: instants strictly below `f` are committed
    /// everywhere. Raises the released floor (monotone — the
    /// arithmetic bound may shrink between rounds), prunes the
    /// crossing log, fossil-collects segments no rollback can target
    /// (targets are always ≥ `f`; the newest segment at or below `f`
    /// is kept as their floor), and drops back to live execution when
    /// no speculation remains.
    fn promote(&mut self, f: SimTime) {
        if self.released_floor < f {
            self.released_floor = f;
        }
        let cut = self.xlog.partition_point(|e| e.0 < f);
        self.xlog.drain(..cut);
        if self.xlog.is_empty() {
            if !self.segs.is_empty() || self.pcur > 0 {
                self.go_live();
            }
            return;
        }
        let mut drop_n = 0;
        while drop_n + 1 < self.segs.len() && self.segs[drop_n + 1].time <= f {
            drop_n += 1;
        }
        if drop_n > 0 {
            let e_cut = self.segs[drop_n].entries_start as usize;
            let a_cut = self.segs[drop_n].router_start as usize;
            self.seg_entries.drain(..e_cut);
            self.arena.drain(..a_cut);
            self.segs.drain(..drop_n);
            for s in &mut self.segs {
                s.entries_start -= e_cut as u32;
                s.router_start -= a_cut as u32;
                s.router_end -= a_cut as u32;
            }
            for e in &mut self.seg_entries {
                e.1 -= a_cut as u32;
                e.2 -= a_cut as u32;
            }
        }
        // The delivered-pending prefix below the oldest surviving
        // snapshot can never be replayed: fossil it too.
        let q = self.segs[0].pcur_before;
        if q > 0 {
            self.pending.drain(..q);
            self.pcur -= q;
            for s in &mut self.segs {
                s.pcur_before -= q;
            }
        }
    }

    /// Drops every speculative structure: all executed instants are
    /// committed and the shard continues as a conservative one would.
    fn go_live(&mut self) {
        debug_assert!(self.xlog.is_empty(), "live with uncommitted instants");
        debug_assert!(
            self.spec_outbox.iter().all(|o| o.is_empty()),
            "live with staged mail"
        );
        self.segs.clear();
        self.seg_entries.clear();
        self.arena.clear();
        self.pending.drain(..self.pcur);
        self.pcur = 0;
        self.log_active = false;
    }

    /// Merges released (committed) mail from the inbox into the sorted
    /// pending queue, rolling back first when any of it lands behind an
    /// executed speculative instant. Mail behind a **live** shard's
    /// clock is a protocol violation (the conservative bound admitted
    /// a miss) — typed, not a panic.
    fn merge_released(&mut self) -> Result<(), CascadeError> {
        if self.inbox.is_empty() {
            return Ok(());
        }
        let head = self.inbox[0].0.at;
        if self.xlog.last().is_some_and(|e| e.0 >= head) {
            if self.segs.is_empty() {
                // Defensively unreachable: a nonempty crossing log
                // always has a covering segment (the straddle rule).
                let err = CascadeError::Speculation {
                    at: head,
                    shard: self.idx,
                    kind: SpeculationFault::RollbackPastOldestSnapshot,
                };
                self.failed = Some(err);
                self.inbox.clear();
                return Err(err);
            }
            self.rollback_to(head);
        } else if self.xlog.is_empty() && head < self.now {
            let err = CascadeError::Speculation {
                at: head,
                shard: self.idx,
                kind: SpeculationFault::CausalityMiss,
            };
            self.failed = Some(err);
            self.inbox.clear();
            return Err(err);
        }
        let tail = self.pcur;
        self.pending.append(&mut self.inbox);
        self.pending[tail..].sort_unstable_by_key(|m| m.0);
        Ok(())
    }

    /// Delivers undelivered pending mail due at `t` through the replay
    /// cursor: entries are kept (commands cloned out) so a rollback
    /// can re-deliver them deterministically.
    fn deliver_due_pending_spec(&mut self, t: SimTime) -> Result<(), CascadeError> {
        if self.failed.is_some() {
            return Ok(());
        }
        let end = self.pcur
            + self.pending[self.pcur..]
                .iter()
                .take_while(|m| m.0.at <= t)
                .count();
        if end == self.pcur {
            return Ok(());
        }
        debug_assert!(self.wave.is_empty() && self.out_buf.is_empty());
        self.stats.mailbox_recv += (end - self.pcur) as u64;
        self.touched.clear();
        for i in self.pcur..end {
            let (dst, cmd) = {
                let m = &self.pending[i];
                (m.1 .0, m.1 .1.clone())
            };
            let (os, ol) = self.owner[dst.0];
            debug_assert_eq!(os, self.idx, "mail delivered to the wrong shard");
            let ol = ol as usize;
            if self.log_active {
                self.save_node_pre(ol);
            }
            self.events += 1;
            self.nodes[ol].handle(t, cmd, &mut self.out_buf);
            self.touched.push(ol);
            for e in self.out_buf.drain(..) {
                self.wave.push((dst, e));
            }
        }
        self.pcur = end;
        let result = self.cascade(t, Cross::Stage);
        self.reschedule_touched();
        result
    }

    /// The optimistic window body: merges released mail (rolling back
    /// on a straggler), then runs every local instant strictly before
    /// `w_end`. Instants at or past `spec_begin` — and, once any
    /// segment exists, *every* instant (a rollback may land inside the
    /// window's committed prefix) — execute with pre-image logging.
    fn run_opt_window(&mut self, w_end: SimTime) {
        if self.failed.is_some() {
            return;
        }
        if self.merge_released().is_err() {
            return;
        }
        loop {
            let next =
                crate::engine::earliest([self.peek(), self.pending.get(self.pcur).map(|m| m.0.at)]);
            let Some(t) = next else { break };
            if t >= w_end {
                break;
            }
            if t < self.now {
                let err = CascadeError::Speculation {
                    at: t,
                    shard: self.idx,
                    kind: SpeculationFault::CausalityMiss,
                };
                self.failed = Some(err);
                return;
            }
            let logging = !self.segs.is_empty() || t >= self.spec_begin;
            if logging {
                if self.segs.last().is_none_or(|s| s.events_in >= self.cadence) {
                    self.open_segment(t);
                }
                if self.xlog.last().is_none_or(|e| e.0 < t) {
                    self.xlog.push((t, self.peek_sync()));
                }
            }
            self.log_active = logging;
            let events_before = self.events;
            self.now = t;
            if self.heap.peek().is_some_and(|(at, _)| at == t) {
                self.pop_due(t);
                self.touched.clear();
                self.touched.extend_from_slice(&self.due);
                debug_assert!(self.wave.is_empty() && self.out_buf.is_empty());
                for i in 0..self.due.len() {
                    let l = self.due[i];
                    if logging {
                        self.save_node_pre(l);
                    }
                    self.events += 1;
                    self.nodes[l].advance(t, &mut self.out_buf);
                    for e in self.out_buf.drain(..) {
                        self.wave.push((self.global_ids[l], e));
                    }
                }
                let result = self.cascade(t, Cross::Stage);
                self.reschedule_touched();
                if result.is_err() {
                    self.log_active = false;
                    return;
                }
            }
            if self.deliver_due_pending_spec(t).is_err() {
                self.log_active = false;
                return;
            }
            self.log_active = false;
            if logging {
                let delta = self.events - events_before;
                let seg = self.segs.last_mut().expect("segment open");
                seg.events_in += delta;
            }
        }
    }

    /// Barrier preparation for a sync instant at `t`: merge released
    /// mail, roll back any speculation at or past `t`, replay the
    /// committed region below it (re-emissions are below the released
    /// floor and dropped as duplicates), then drop the speculative
    /// apparatus — the conservative sync-instant machinery runs on the
    /// resulting live state unchanged.
    fn materialize_at(&mut self, t: SimTime) {
        if self.failed.is_some() {
            return;
        }
        if self.merge_released().is_err() {
            return;
        }
        if self.xlog.last().is_some_and(|e| e.0 >= t) {
            if self.segs.is_empty() {
                let err = CascadeError::Speculation {
                    at: t,
                    shard: self.idx,
                    kind: SpeculationFault::RollbackPastOldestSnapshot,
                };
                self.failed = Some(err);
                return;
            }
            self.rollback_to(t);
        }
        // Replay unconditionally: a rollback that lands on the oldest
        // segment empties `segs`, but the committed region below `t`
        // still has to re-execute before the sync instant delivers
        // mail at `t`. For a shard already at `t` this is a no-op.
        self.run_opt_window(t);
        if self.failed.is_some() {
            return;
        }
        self.xlog.clear();
        self.go_live();
    }
}

/// The adaptive-mode window bounds, as a standalone function so the
/// property tests can drive it over enumerated inputs.
///
/// Inputs are per-shard published state at one coordinator iteration:
/// `t[k]` is shard `k`'s earliest actionable instant (heap head or
/// pending-mail head), `b[k]` its earliest sync-class deadline, and
/// `influence[o * n + k]` the lookahead of the cut edge `o → k` (`None`
/// when shard `o` cannot send mail to shard `k`).
///
/// The earliest instant shard `o` can *influence* shard `k` over an
/// edge is `M(o→k) = min(b[o], A[o] + la(o→k))`: a sync node firing on
/// its own deadline can emit at `b[o]`, and any consequence of a
/// command entering a sync node at or after `A[o]` emerges no earlier
/// than `A[o] + la` (the lookahead contract). `A[o]` — the earliest
/// instant shard `o` can act at all — must account for *transitive*
/// wake-ups (an idle middle shard can receive mail and relay it), so it
/// is the greatest fixpoint of
///
/// ```text
/// A[k] = min(t[k], min over edges o→k of M(o→k))
/// ```
///
/// computed by Bellman–Ford relaxation (at most `n` rounds; bounds only
/// ever decrease and are bounded below by `T`). The window bound is
/// then `E[k] = min(run_end, min over edges o→k of M(o→k))`: shard `k`
/// may run every instant strictly before the earliest moment any other
/// shard could possibly affect it.
///
/// Two provable orderings anchor the property tests: `E[k]` never
/// exceeds the per-edge safety bound `min(b[o], t[o] + la(o→k))` of any
/// single incoming edge (since `A[o] <= t[o]`), and `E[k]` is at least
/// the fixed-window bound `min(run_end, B_min, T + min incoming la)`
/// (since every `A[o] >= T` and `b[o] >= B_min`).
pub(crate) fn adaptive_bounds(
    t: &[Option<SimTime>],
    b: &[Option<SimTime>],
    influence: &[Option<Dur>],
    run_end: SimTime,
    a_buf: &mut Vec<Option<SimTime>>,
    e_buf: &mut Vec<SimTime>,
) {
    let n = t.len();
    debug_assert_eq!(b.len(), n);
    debug_assert_eq!(influence.len(), n * n);
    a_buf.clear();
    a_buf.extend_from_slice(t);
    for _ in 0..n {
        let mut changed = false;
        for k in 0..n {
            for o in 0..n {
                if o == k {
                    continue;
                }
                let Some(la) = influence[o * n + k] else {
                    continue;
                };
                let m = crate::engine::earliest([b[o], a_buf[o].map(|a| a.saturating_add(la))]);
                if let Some(m) = m {
                    if a_buf[k].is_none_or(|a| m < a) {
                        a_buf[k] = Some(m);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    e_buf.clear();
    for k in 0..n {
        let mut e = run_end;
        for o in 0..n {
            if o == k {
                continue;
            }
            let Some(la) = influence[o * n + k] else {
                continue;
            };
            let m = crate::engine::earliest([b[o], a_buf[o].map(|a| a.saturating_add(la))]);
            if let Some(m) = m {
                e = e.min(m);
            }
        }
        e_buf.push(e);
    }
}

/// The conservative parallel scheduler. See the module docs.
///
/// Construction mirrors [`crate::bus::Harness`], except nodes declare
/// their shard (and whether they are sync-class) at registration and
/// each shard gets its own router instance; router state is merged for
/// telemetry through [`MergeTelemetry`].
pub struct ShardedHarness<C: Component, R: Router<C>> {
    shards: Vec<Option<ShardState<C, R>>>,
    /// Global registration-order labels (telemetry namespaces).
    labels: Vec<String>,
    /// Global node id → (shard, local index).
    owner_map: Vec<(u32, u32)>,
    sealed: bool,
    has_sync: bool,
    lookahead: Dur,
    /// Optional per-shard refinement of `lookahead`: shard `k`'s window
    /// is capped by `shard_lookahead[k]` instead of the global minimum.
    /// `None` for a shard means no cut edge touches it — its window is
    /// bounded only by the sync horizon `B` and the run end.
    shard_lookahead: Option<Vec<Option<Dur>>>,
    /// Synchronization protocol (adaptive by default; fixed windows as
    /// the ablation baseline).
    mode: WindowMode,
    /// Flattened `n × n` influence matrix for adaptive mode:
    /// `influence[o * n + k]` is the tightest cut-edge lookahead over
    /// which shard `o` can mail shard `k`, `None` when it cannot.
    /// Derived generically at seal when the topology layer installs
    /// nothing explicit.
    influence: Option<Vec<Option<Dur>>>,
    /// Optional cap on adaptive window length past the global minimum
    /// `T`. An uninfluenced shard's window is otherwise bounded only by
    /// the run end, so its outbox (and the receiver's pending queue)
    /// would grow with the horizon; the cap trades a few extra barriers
    /// for bounded mailbox memory. `None` (default) leaves windows
    /// unbounded.
    max_window_span: Option<Dur>,
    threads: usize,
    /// Execution discipline (conservative by default; optimistic runs
    /// the Time-Warp-style speculate/rollback coordinator).
    exec: ExecMode,
    /// Events between speculative snapshots (optimistic mode).
    snapshot_cadence: u64,
    /// How far past its conservative bound a shard may speculate per
    /// window; defaults to 8× the lookahead when unset.
    spec_span: Option<Dur>,
    /// GVT reduction rounds run by the optimistic coordinator.
    gvt_rounds: u64,
    /// Per-shard committed frontier (monotone): instants strictly
    /// below it are globally committed; staged mail below it has been
    /// released.
    opt_frontier: Vec<SimTime>,
    now: SimTime,
    failed: Option<CascadeError>,
    telemetry: Registry,
    windows: u64,
    sync_instants: u64,
    mail_rounds: u64,
    /// Per-destination merge scratch for mailbox exchange rounds.
    merge_buf: Vec<Vec<Mail<C::Cmd>>>,
    /// Dispatch scratch: indices of shards participating in a round.
    active: Vec<usize>,
    // Adaptive-coordinator scratch (cleared and refilled per iteration,
    // capacity retained — the sharded path is also alloc-free in steady
    // state).
    t_buf: Vec<Option<SimTime>>,
    b_buf: Vec<Option<SimTime>>,
    a_buf: Vec<Option<SimTime>>,
    e_buf: Vec<SimTime>,
}

impl<C, R> ShardedHarness<C, R>
where
    C: Component + Persist + Send + 'static,
    C::Cmd: Clone + Send + 'static,
    C::Out: Send + 'static,
    R: Router<C> + Rollback + Send + 'static,
{
    /// Creates a harness with one shard per router in `routers`.
    /// `lookahead` is the conservative window bound `L` (must be
    /// positive if any sync-class node is registered); `cascade_limit`
    /// bounds same-instant cascades exactly as in the single-threaded
    /// harness (and also bounds mailbox exchange rounds per instant).
    pub fn new(routers: Vec<R>, cascade_limit: u32, lookahead: Dur) -> Self {
        assert!(!routers.is_empty(), "at least one shard required");
        assert!(cascade_limit > 0, "cascade limit must be positive");
        let n = routers.len();
        ShardedHarness {
            shards: routers
                .into_iter()
                .enumerate()
                .map(|(k, r)| Some(ShardState::new(k as u32, r, cascade_limit, n)))
                .collect(),
            labels: Vec::new(),
            owner_map: Vec::new(),
            sealed: false,
            has_sync: false,
            lookahead,
            shard_lookahead: None,
            mode: WindowMode::default(),
            influence: None,
            max_window_span: None,
            threads: crate::sweep::default_threads(n),
            exec: ExecMode::default(),
            snapshot_cadence: 256,
            spec_span: None,
            gvt_rounds: 0,
            opt_frontier: Vec::new(),
            now: SimTime::ZERO,
            failed: None,
            telemetry: Registry::new(),
            windows: 0,
            sync_instants: 0,
            mail_rounds: 0,
            merge_buf: (0..n).map(|_| Vec::new()).collect(),
            active: Vec::new(),
            t_buf: Vec::new(),
            b_buf: Vec::new(),
            a_buf: Vec::new(),
            e_buf: Vec::new(),
        }
    }

    /// Like [`ShardedHarness::new`] with [`DEFAULT_CASCADE_LIMIT`].
    pub fn with_default_limit(routers: Vec<R>, lookahead: Dur) -> Self {
        ShardedHarness::new(routers, DEFAULT_CASCADE_LIMIT, lookahead)
    }

    /// Registers `node` on `shard` under a dotted telemetry namespace.
    /// Global [`NodeId`]s are assigned densely in registration order
    /// across all shards — identical numbering to registering the same
    /// sequence into a single-threaded harness. `sync` marks the node
    /// sync-class (it may emit cross-shard commands; its deadlines
    /// bound the conservative windows).
    pub fn add_node_labeled(
        &mut self,
        node: C,
        label: impl Into<String>,
        shard: usize,
        sync: bool,
    ) -> NodeId {
        assert!(!self.sealed, "cannot add nodes after the first run");
        let id = NodeId(self.owner_map.len());
        let s = self.shards[shard].as_mut().expect("shard present");
        let local = s.add_node(node, id, sync);
        self.owner_map.push((shard as u32, local));
        self.labels.push(label.into());
        self.has_sync |= sync;
        id
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total registered nodes.
    pub fn len(&self) -> usize {
        self.owner_map.len()
    }

    /// True when no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.owner_map.is_empty()
    }

    /// Current simulation time (the run horizon after a completed run).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Component activations serviced so far, summed over shards. By
    /// construction equal to the single-threaded count for the same
    /// simulation.
    pub fn events(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.as_ref().expect("shard present").events)
            .sum()
    }

    /// The error that poisoned this harness, if any shard's cascade
    /// overflowed.
    pub fn failure(&self) -> Option<CascadeError> {
        self.failed
    }

    /// Installs per-shard window bounds derived from the cut edges
    /// incident to each shard: shard `k` may run `lookahead[k]` past
    /// the window base instead of the one global minimum, so shards far
    /// from the tightest link run wider windows. `None` for a shard
    /// means no cut edge touches it (no bound beyond the sync horizon).
    ///
    /// Soundness: a frame handed to a cut bridge `i` at or after the
    /// window base `T` cannot re-emerge before `T + lookahead_i`, and
    /// every shard holding one of that bridge's port rings has
    /// `lookahead[k] <= lookahead_i`, so all of them stop before any
    /// such effect — the per-edge bound never admits a causality miss
    /// the global minimum would have caught.
    pub fn set_shard_lookaheads(&mut self, lookahead: Vec<Option<Dur>>) {
        assert!(!self.sealed, "cannot change lookahead after the first run");
        assert_eq!(
            lookahead.len(),
            self.shards.len(),
            "one lookahead entry per shard"
        );
        self.shard_lookahead = Some(lookahead);
    }

    /// Selects the synchronization protocol. Both modes are
    /// bit-identical; see [`WindowMode`].
    pub fn set_window_mode(&mut self, mode: WindowMode) {
        assert!(
            !self.sealed,
            "cannot change window mode after the first run"
        );
        self.mode = mode;
    }

    /// The synchronization protocol this harness runs.
    pub fn window_mode(&self) -> WindowMode {
        self.mode
    }

    /// Selects the execution discipline. Optimistic execution is
    /// bit-identical to both conservative modes (the parity tests pin
    /// it); it trades snapshot/rollback work for speculation past the
    /// conservative bound.
    pub fn set_exec_mode(&mut self, exec: ExecMode) {
        assert!(!self.sealed, "cannot change exec mode after the first run");
        self.exec = exec;
    }

    /// The execution discipline this harness runs.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec
    }

    /// Events a shard executes between speculative snapshots
    /// (optimistic mode). A smaller cadence makes rollbacks cheaper
    /// and snapshots dearer; `cadence` must be positive.
    pub fn set_snapshot_cadence(&mut self, cadence: u64) {
        assert!(cadence > 0, "snapshot cadence must be positive");
        self.snapshot_cadence = cadence;
    }

    /// How far past its conservative bound each shard may speculate
    /// per window. Defaults to 8× the lookahead. Results are
    /// span-invariant (parity holds regardless); the span only bounds
    /// how much state can need rolling back at once.
    pub fn set_speculation_span(&mut self, span: Dur) {
        assert!(span > Dur::ZERO, "a zero span disables speculation");
        self.spec_span = Some(span);
    }

    /// Caps every adaptive window at `span` past the global minimum
    /// instant `T`. Results are protocol-invariant (the parity tests
    /// hold both modes to bit-identity regardless), but without a cap
    /// an *uninfluenced* shard may run clear to the horizon in one
    /// window, growing its outbox — and the receiving shard's pending
    /// queue — linearly with the run length. Long-running callers that
    /// care about bounded mailbox memory (e.g. the zero-allocation
    /// steady-state test) install a span; `span` must be positive.
    pub fn set_max_window_span(&mut self, span: Dur) {
        assert!(span > Dur::ZERO, "a zero span would stall every window");
        self.max_window_span = Some(span);
    }

    /// Installs the per-edge influence matrix for adaptive mode:
    /// `lookahead[o][k]` is the tightest cut-edge lookahead over which
    /// shard `o` can mail shard `k`, `None` when no such edge exists.
    /// The topology layer derives this from the sync bridges' actual
    /// port-ring placement; when nothing is installed, seal derives a
    /// conservative fallback from the per-shard lookaheads (every shard
    /// with sync-class nodes influences every other shard).
    ///
    /// Soundness requirement on the caller: mail from shard `o` to
    /// shard `k` must only ever emerge from a sync node whose lookahead
    /// is at least `lookahead[o][k]`.
    pub fn set_influence_lookaheads(&mut self, lookahead: Vec<Vec<Option<Dur>>>) {
        assert!(!self.sealed, "cannot change influence after the first run");
        let n = self.shards.len();
        assert_eq!(lookahead.len(), n, "one influence row per shard");
        let mut flat = Vec::with_capacity(n * n);
        for (o, row) in lookahead.iter().enumerate() {
            assert_eq!(
                row.len(),
                n,
                "influence row {o} must have one entry per shard"
            );
            for (k, la) in row.iter().enumerate() {
                if let Some(d) = la {
                    assert!(
                        o != k,
                        "influence matrix diagonal must be None (a shard cannot mail itself)"
                    );
                    assert!(
                        *d > Dur::ZERO,
                        "influence edge {o}→{k}: a zero lookahead would stall the window"
                    );
                }
                flat.push(*la);
            }
        }
        self.influence = Some(flat);
    }

    /// Caps how many pool workers a dispatch invites (the coordinator
    /// always participates). Defaults to the hardware parallelism
    /// capped at the shard count; at 1 every window runs inline on the
    /// caller, which measures pure protocol overhead (the schedule —
    /// and therefore every result — is identical at any thread count).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Execution counters for shard `k`.
    pub fn shard_stats(&self, k: usize) -> ShardStats {
        let s = self.shards[k].as_ref().expect("shard present");
        let mut stats = s.stats;
        stats.events = s.events;
        stats
    }

    /// Shared access to shard `k`'s router.
    pub fn shard_router(&self, k: usize) -> &R {
        &self.shards[k].as_ref().expect("shard present").router
    }

    /// Mutable access to shard `k`'s router (checkpoint restoration
    /// distributes decoded router state across the shard routers).
    pub fn shard_router_mut(&mut self, k: usize) -> &mut R {
        &mut self.shards[k].as_mut().expect("shard present").router
    }

    /// The shard that owns `id`.
    pub fn shard_of(&self, id: NodeId) -> usize {
        self.owner_map[id.0].0 as usize
    }

    /// Shared access to a node by its global id.
    pub fn node(&self, id: NodeId) -> &C {
        let (s, l) = self.owner_map[id.0];
        &self.shards[s as usize]
            .as_ref()
            .expect("shard present")
            .nodes[l as usize]
    }

    /// Mutable access to a node. The node is conservatively rescheduled
    /// before the next step, as in the single-threaded harness.
    pub fn node_mut(&mut self, id: NodeId) -> &mut C {
        let (s, l) = self.owner_map[id.0];
        let shard = self.shards[s as usize].as_mut().expect("shard present");
        shard.dirty.push(l as usize);
        &mut shard.nodes[l as usize]
    }

    /// Distributes the final owner map to the shards; registration is
    /// closed afterwards.
    fn seal(&mut self) {
        if self.sealed {
            return;
        }
        if self.has_sync {
            assert!(
                self.lookahead > Dur::ZERO,
                "sync-class nodes require a positive lookahead"
            );
            if let Some(per_shard) = &self.shard_lookahead {
                for (k, la) in per_shard.iter().enumerate() {
                    if let Some(d) = la {
                        assert!(
                            *d > Dur::ZERO,
                            "shard {k}: a zero per-shard lookahead would stall the window"
                        );
                    }
                }
            }
        }
        let owner = Arc::new(self.owner_map.clone());
        for s in &mut self.shards {
            s.as_mut().expect("shard present").owner = Arc::clone(&owner);
        }
        if (self.mode == WindowMode::Adaptive || self.exec == ExecMode::Optimistic)
            && self.influence.is_none()
        {
            // Generic fallback influence matrix: every shard with at
            // least one sync-class node can mail every other shard. The
            // edge lookahead is the larger of the two endpoint shards'
            // cut-edge minima (sound: a real bridge between them touches
            // both shards, so its lookahead is at least that max), the
            // global lookahead when no per-shard bounds are installed.
            let n = self.shards.len();
            let mut flat = vec![None; n * n];
            for o in 0..n {
                if !self.shards[o]
                    .as_ref()
                    .expect("shard present")
                    .has_sync_nodes()
                {
                    continue;
                }
                for k in 0..n {
                    if o == k {
                        continue;
                    }
                    flat[o * n + k] = match &self.shard_lookahead {
                        Some(v) => match (v[o], v[k]) {
                            (Some(a), Some(b)) => Some(a.max(b)),
                            // A shard no cut edge touches can neither
                            // send nor receive cross-shard mail.
                            _ => None,
                        },
                        None => Some(self.lookahead),
                    };
                }
            }
            self.influence = Some(flat);
        }
        self.sealed = true;
    }

    /// Runs the indices in `self.active` through `f`, inline when only
    /// one shard participates, on the sweep pool otherwise. Shard
    /// states move to the workers and come back in place.
    fn dispatch<F>(&mut self, f: F)
    where
        F: Fn(&mut ShardState<C, R>) + Send + Sync + 'static,
    {
        if self.active.len() == 1 || self.threads == 1 {
            // Inline sequential path: no worker handoff, no state
            // collection — a single-threaded sharded run stays
            // allocation-free in steady state.
            for i in 0..self.active.len() {
                let k = self.active[i];
                f(self.shards[k].as_mut().expect("shard present"));
            }
            return;
        }
        let states: Vec<(usize, ShardState<C, R>)> = self
            .active
            .iter()
            .map(|&k| (k, self.shards[k].take().expect("shard present")))
            .collect();
        let threads = self.threads;
        let done = parallel_map(states, threads, move |(k, mut s)| {
            f(&mut s);
            (k, s)
        });
        for (k, s) in done {
            self.shards[k] = Some(s);
        }
    }

    /// Adopts the deterministically-first shard failure (by failing
    /// instant, then node) as the harness failure, leaving the same
    /// telemetry trail as the single-threaded harness.
    fn check_failures(&mut self) -> Result<(), CascadeError>
    where
        R: MergeTelemetry,
    {
        if let Some(e) = self.failed {
            return Err(e);
        }
        let mut first: Option<CascadeError> = None;
        for s in &self.shards {
            if let Some(e) = s.as_ref().expect("shard present").failed {
                first = Some(match first {
                    Some(f) if (f.at(), f.node()) <= (e.at(), e.node()) => f,
                    _ => e,
                });
            }
        }
        if let Some(err) = first {
            self.failed = Some(err);
            self.telemetry
                .event(err.at(), "sim.cascade.overflow", err.event_detail());
            self.snapshot_phase("cascade-failure");
            return Err(err);
        }
        Ok(())
    }

    /// Runs until no node has a deadline at or before `horizon`, then
    /// leaves the clock at `horizon`. Bit-identical to
    /// [`crate::bus::Harness::try_run_until`] over the same node set,
    /// faster in wall clock when the partition decouples the shards.
    pub fn try_run_until(&mut self, horizon: SimTime) -> Result<(), CascadeError>
    where
        R: MergeTelemetry,
    {
        if let Some(e) = self.failed {
            return Err(e);
        }
        self.seal();
        // One window past the horizon is enough for every shard: the
        // window end is exclusive, so `horizon + 1 ns` makes deadlines
        // at exactly `horizon` runnable.
        let run_end = horizon.saturating_add(Dur::from_ns(1));
        match (self.exec, self.mode) {
            (ExecMode::Optimistic, _) => self.run_optimistic(horizon, run_end)?,
            (_, WindowMode::FixedLookahead) => self.run_fixed(horizon, run_end)?,
            (_, WindowMode::Adaptive) => self.run_adaptive(horizon, run_end)?,
        }
        for s in &mut self.shards {
            let s = s.as_mut().expect("shard present");
            if s.now < horizon {
                s.now = horizon;
            }
        }
        if self.now < horizon {
            self.now = horizon;
        }
        Ok(())
    }

    /// The fixed-lookahead coordinator loop: the classic bounded-window
    /// protocol, unchanged — the ablation baseline adaptive mode is
    /// parity-tested against.
    fn run_fixed(&mut self, horizon: SimTime, run_end: SimTime) -> Result<(), CascadeError>
    where
        R: MergeTelemetry,
    {
        loop {
            // T: earliest deadline anywhere (after flushing node_mut
            // reschedules); B: earliest sync-class deadline.
            let mut t_min: Option<SimTime> = None;
            let mut b_min: Option<SimTime> = None;
            for s in &mut self.shards {
                let s = s.as_mut().expect("shard present");
                s.flush_dirty();
                t_min = crate::engine::earliest([t_min, s.peek()]);
                b_min = crate::engine::earliest([b_min, s.peek_sync()]);
            }
            let Some(t) = t_min else { break };
            if t > horizon {
                break;
            }
            if b_min == Some(t) {
                self.sync_instants += 1;
                self.run_sync_instant(t)?;
            } else {
                // Lookahead-independent bound: run end and sync horizon
                // `B`; each shard then caps it with its own lookahead.
                let mut base = run_end;
                if let Some(b) = b_min {
                    base = base.min(b);
                }
                self.windows += 1;
                self.run_parallel_window(t, base)?;
            }
        }
        Ok(())
    }

    /// The adaptive coordinator loop. Per iteration: flush every outbox
    /// into the destination shards' sorted pending queues, publish each
    /// shard's earliest actionable instant `t[k]` and sync deadline
    /// `b[k]`, compute per-shard window bounds through the
    /// [`adaptive_bounds`] influence fixpoint, and dispatch every shard
    /// with work strictly inside its bound. When no shard can make
    /// progress (every bound collapses onto `T`), fall back to one
    /// global sync instant at `T` — the fixed protocol's exchange
    /// machinery, which always advances. A run of consecutive
    /// iterations stuck at one instant beyond the cascade limit is the
    /// cross-shard livelock (zero-lookahead mail ping-pong) and poisons
    /// the harness exactly like a cascade overflow.
    fn run_adaptive(&mut self, horizon: SimTime, run_end: SimTime) -> Result<(), CascadeError>
    where
        R: MergeTelemetry,
    {
        let n = self.shards.len();
        let limit = u64::from(self.shards[0].as_ref().expect("shard present").limit);
        let mut streak_at: Option<SimTime> = None;
        let mut streak = 0u64;
        loop {
            // Flush in-flight mail: gather per-destination (already
            // per-(src,dst) batched in the outboxes), then append and
            // re-sort each destination's pending queue. Keys are unique,
            // so the unstable sort is deterministic.
            let mut moved = false;
            for src in 0..n {
                let s = self.shards[src].as_mut().expect("shard present");
                for (dst, out) in s.outbox.iter_mut().enumerate() {
                    if !out.is_empty() {
                        moved = true;
                        self.merge_buf[dst].append(out);
                    }
                }
            }
            if moved {
                self.mail_rounds += 1;
                for dst in 0..n {
                    if self.merge_buf[dst].is_empty() {
                        continue;
                    }
                    let s = self.shards[dst].as_mut().expect("shard present");
                    s.pending.append(&mut self.merge_buf[dst]);
                    s.pending.sort_unstable_by_key(|m| m.0);
                }
            }
            // Publish per-shard state.
            self.t_buf.clear();
            self.b_buf.clear();
            let mut t_min: Option<SimTime> = None;
            for k in 0..n {
                let s = self.shards[k].as_mut().expect("shard present");
                s.flush_dirty();
                let tk = crate::engine::earliest([s.peek(), s.peek_pending()]);
                t_min = crate::engine::earliest([t_min, tk]);
                self.t_buf.push(tk);
                self.b_buf.push(s.peek_sync());
            }
            let Some(t) = t_min else { break };
            if t > horizon {
                break;
            }
            // Livelock guard: the global minimum not moving for `limit`
            // consecutive iterations means mail is ping-ponging at one
            // instant without the lookahead ever separating the shards.
            if streak_at == Some(t) {
                streak += 1;
            } else {
                streak_at = Some(t);
                streak = 1;
            }
            if streak > limit {
                let node = self
                    .shards
                    .iter()
                    .filter_map(|s| {
                        s.as_ref()
                            .expect("shard present")
                            .pending
                            .first()
                            .map(|m| m.1 .0)
                    })
                    .next()
                    .or_else(|| {
                        self.shards.iter().find_map(|s| {
                            let s = s.as_ref().expect("shard present");
                            s.heap.peek().map(|(_, l)| s.global_ids[l])
                        })
                    })
                    .expect("a stuck instant has work somewhere");
                let err = CascadeError::overflow(t, node, streak as u32);
                self.failed = Some(err);
                self.telemetry
                    .event(err.at(), "sim.cascade.overflow", err.event_detail());
                self.snapshot_phase("cascade-failure");
                return Err(err);
            }
            // Window bounds and the active set.
            let influence = self.influence.as_deref().expect("sealed with influence");
            adaptive_bounds(
                &self.t_buf,
                &self.b_buf,
                influence,
                run_end,
                &mut self.a_buf,
                &mut self.e_buf,
            );
            if let Some(span) = self.max_window_span {
                let cap = t.saturating_add(span);
                for e in self.e_buf.iter_mut() {
                    *e = (*e).min(cap);
                }
            }
            self.active.clear();
            for k in 0..n {
                if self.t_buf[k].is_some_and(|tk| tk < self.e_buf[k]) {
                    let s = self.shards[k].as_mut().expect("shard present");
                    s.w_end = self.e_buf[k];
                    self.active.push(k);
                }
            }
            if self.active.is_empty() {
                // Every bound collapsed onto T: the fixed protocol's
                // sync instant always advances past it.
                self.sync_instants += 1;
                self.run_sync_instant(t)?;
                continue;
            }
            self.windows += 1;
            let mut next_active = 0;
            for k in 0..n {
                let s = self.shards[k].as_mut().expect("shard present");
                if next_active < self.active.len() && self.active[next_active] == k {
                    next_active += 1;
                    s.stats.window_advances += 1;
                } else {
                    s.stats.idle_windows += 1;
                }
            }
            self.dispatch(move |s| {
                let w = s.w_end;
                s.run_adaptive_window(w);
            });
            self.check_failures()?;
        }
        debug_assert!(
            self.shards.iter().all(|s| {
                let s = s.as_ref().expect("shard present");
                s.pending.is_empty() && s.outbox.iter().all(|o| o.is_empty())
            }),
            "adaptive run ended with mail in flight"
        );
        Ok(())
    }

    /// The optimistic (Time-Warp-style) coordinator loop. Per round:
    ///
    /// 1. **Release** staged mail whose emitting instant is below the
    ///    source shard's committed frontier — exactly the mail a
    ///    conservative run would be flushing this round.
    /// 2. **Promote** every shard to its frontier (one GVT reduction):
    ///    prune crossing logs, fossil-collect dead snapshots, drop
    ///    fully committed shards back to live execution.
    /// 3. **Distribute** released mail into receiver inboxes in
    ///    [`MailKey`] order.
    /// 4. **Publish** each shard's *committed* view — for a
    ///    speculating shard, the state it had at its first
    ///    un-committed instant — so the conservative window bounds
    ///    below are computed from exactly the values a conservative
    ///    coordinator would see.
    /// 5. **Bound** via the same [`adaptive_bounds`] fixpoint, then
    ///    either dispatch speculative windows (each shard runs to its
    ///    conservative bound plus the speculation span, staging
    ///    cross-shard mail and snapshotting at the cadence) or, when
    ///    no committed progress is possible, materialize the affected
    ///    shards at the barrier and run one conservative sync instant.
    /// 6. **Commit** this round's bounds into the frontiers
    ///    (monotone).
    ///
    /// Rollbacks happen inside shard dispatch: released mail landing
    /// behind a shard's speculative clock rewinds it to the newest
    /// snapshot at or before the straggler, and deterministic replay
    /// (total mailbox order, cloned re-deliveries, duplicate-dropped
    /// re-emissions) re-derives the timeline — no anti-messages.
    fn run_optimistic(&mut self, horizon: SimTime, run_end: SimTime) -> Result<(), CascadeError>
    where
        R: MergeTelemetry,
    {
        let n = self.shards.len();
        let limit = u64::from(self.shards[0].as_ref().expect("shard present").limit);
        let span = self
            .spec_span
            .unwrap_or_else(|| Dur::from_ns(self.lookahead.as_ns().saturating_mul(8).max(1)));
        self.opt_frontier.clear();
        self.opt_frontier.resize(n, SimTime::ZERO);
        let cadence = self.snapshot_cadence;
        for s in &mut self.shards {
            s.as_mut().expect("shard present").cadence = cadence;
        }
        let mut streak_at: Option<SimTime> = None;
        let mut streak = 0u64;
        loop {
            // (1) Release committed staged mail (sorted by emission
            // instant within each (src, dst) lane, so the committed
            // prefix is contiguous).
            let mut moved = false;
            for src in 0..n {
                let f = self.opt_frontier[src];
                let s = self.shards[src].as_mut().expect("shard present");
                for (dst, out) in s.spec_outbox.iter_mut().enumerate() {
                    let cut = out.partition_point(|m| m.0.at < f);
                    if cut > 0 {
                        moved = true;
                        self.merge_buf[dst].extend(out.drain(..cut));
                    }
                }
            }
            // (2) One GVT reduction: promote every shard.
            self.gvt_rounds += 1;
            for k in 0..n {
                let f = self.opt_frontier[k];
                self.shards[k].as_mut().expect("shard present").promote(f);
            }
            // (3) Distribute released mail (keys unique → unstable sort
            // is deterministic and allocation-free).
            if moved {
                self.mail_rounds += 1;
                for dst in 0..n {
                    if self.merge_buf[dst].is_empty() {
                        continue;
                    }
                    self.merge_buf[dst].sort_unstable_by_key(|m| m.0);
                    let s = self.shards[dst].as_mut().expect("shard present");
                    debug_assert!(s.inbox.is_empty());
                    std::mem::swap(&mut s.inbox, &mut self.merge_buf[dst]);
                }
            }
            // (4) Publish committed views.
            self.t_buf.clear();
            self.b_buf.clear();
            let mut t_min: Option<SimTime> = None;
            for k in 0..n {
                let s = self.shards[k].as_mut().expect("shard present");
                s.flush_dirty();
                let inbox_head = s.inbox.first().map(|m| m.0.at);
                let (tk, bk) = match s.xlog.first() {
                    // Speculating: the committed view is the state the
                    // shard had just before its first un-committed
                    // instant (undelivered pending mail is provably
                    // later than every executed instant).
                    Some(&(xt, xb)) => (crate::engine::earliest([Some(xt), inbox_head]), xb),
                    None => (
                        crate::engine::earliest([
                            s.peek(),
                            s.pending.get(s.pcur).map(|m| m.0.at),
                            inbox_head,
                        ]),
                        s.peek_sync(),
                    ),
                };
                t_min = crate::engine::earliest([t_min, tk]);
                self.t_buf.push(tk);
                self.b_buf.push(bk);
            }
            // Exit: speculative instants never pass the horizon (the
            // window end is capped at run_end), so t_min beyond it
            // implies every shard is live and drained.
            let Some(t) = t_min else { break };
            if t > horizon {
                break;
            }
            // Livelock guard, identical to the adaptive coordinator.
            if streak_at == Some(t) {
                streak += 1;
            } else {
                streak_at = Some(t);
                streak = 1;
            }
            if streak > limit {
                let node = self
                    .shards
                    .iter()
                    .filter_map(|s| {
                        let s = s.as_ref().expect("shard present");
                        s.pending
                            .get(s.pcur)
                            .or_else(|| s.inbox.first())
                            .map(|m| m.1 .0)
                    })
                    .next()
                    .or_else(|| {
                        self.shards.iter().find_map(|s| {
                            let s = s.as_ref().expect("shard present");
                            s.heap.peek().map(|(_, l)| s.global_ids[l])
                        })
                    })
                    .expect("a stuck instant has work somewhere");
                let err = CascadeError::overflow(t, node, streak as u32);
                self.failed = Some(err);
                self.telemetry
                    .event(err.at(), "sim.cascade.overflow", err.event_detail());
                self.snapshot_phase("cascade-failure");
                return Err(err);
            }
            // (5) Conservative bounds from the committed views, under
            // whichever window protocol this harness runs — the
            // committed frontier must advance exactly as the matching
            // conservative run would, so the optimistic/conservative
            // ablation compares speculation against its own baseline.
            match self.mode {
                WindowMode::Adaptive => {
                    let influence = self.influence.as_deref().expect("sealed with influence");
                    adaptive_bounds(
                        &self.t_buf,
                        &self.b_buf,
                        influence,
                        run_end,
                        &mut self.a_buf,
                        &mut self.e_buf,
                    );
                }
                WindowMode::FixedLookahead => {
                    // Mirror `run_fixed`/`run_parallel_window`: bound at
                    // the sync horizon `B`, then cap each shard with its
                    // own lookahead.
                    let mut base = run_end;
                    for bk in self.b_buf.iter().flatten() {
                        base = base.min(*bk);
                    }
                    self.e_buf.clear();
                    for k in 0..n {
                        let mut e = base;
                        if self.has_sync {
                            match self.shard_lookahead.as_ref().map(|v| v[k]) {
                                Some(Some(la)) => e = e.min(t.saturating_add(la)),
                                Some(None) => {}
                                None => e = e.min(t.saturating_add(self.lookahead)),
                            }
                        }
                        self.e_buf.push(e);
                    }
                }
            }
            if let Some(cap) = self.max_window_span {
                let cap = t.saturating_add(cap);
                for e in self.e_buf.iter_mut() {
                    *e = (*e).min(cap);
                }
            }
            let any_progress = (0..n).any(|k| self.t_buf[k].is_some_and(|tk| tk < self.e_buf[k]));
            if !any_progress {
                // Barrier: materialize every shard the instant can
                // touch (mail never arrives below a shard's committed
                // frontier, so shards whose frontier lies beyond `t`
                // keep their speculation through the sync instant).
                for k in 0..n {
                    if self.opt_frontier[k] > t {
                        continue;
                    }
                    let s = self.shards[k].as_mut().expect("shard present");
                    if !s.inbox.is_empty() || !s.segs.is_empty() {
                        s.materialize_at(t);
                    }
                }
                self.check_failures()?;
                self.sync_instants += 1;
                self.run_sync_instant(t)?;
                for k in 0..n {
                    if self.opt_frontier[k] < t {
                        self.opt_frontier[k] = t;
                    }
                }
                continue;
            }
            // Dispatch: a shard participates when it has released mail
            // to merge or any actionable instant inside its
            // speculative window.
            self.active.clear();
            for k in 0..n {
                let spec_end = run_end.min(self.e_buf[k].saturating_add(span));
                let s = self.shards[k].as_mut().expect("shard present");
                let local_next =
                    crate::engine::earliest([s.peek(), s.pending.get(s.pcur).map(|m| m.0.at)]);
                if !s.inbox.is_empty() || local_next.is_some_and(|x| x < spec_end) {
                    s.w_end = spec_end;
                    s.spec_begin = self.e_buf[k];
                    self.active.push(k);
                }
            }
            if !self.active.is_empty() {
                self.windows += 1;
                let mut next_active = 0;
                for k in 0..n {
                    let s = self.shards[k].as_mut().expect("shard present");
                    if next_active < self.active.len() && self.active[next_active] == k {
                        next_active += 1;
                        s.stats.window_advances += 1;
                    } else {
                        s.stats.idle_windows += 1;
                    }
                }
                self.dispatch(move |s| {
                    let w = s.w_end;
                    s.run_opt_window(w);
                });
                self.check_failures()?;
            }
            // (6) This round's conservative bounds are now committed.
            for k in 0..n {
                if self.opt_frontier[k] < self.e_buf[k] {
                    self.opt_frontier[k] = self.e_buf[k];
                }
            }
        }
        debug_assert!(
            self.shards.iter().all(|s| {
                let s = s.as_ref().expect("shard present");
                s.segs.is_empty()
                    && s.xlog.is_empty()
                    && s.pcur == 0
                    && s.pending.is_empty()
                    && s.inbox.is_empty()
                    && s.outbox.iter().all(|o| o.is_empty())
                    && s.spec_outbox.iter().all(|o| o.is_empty())
            }),
            "optimistic run ended with speculative state"
        );
        Ok(())
    }

    /// Like [`ShardedHarness::try_run_until`] but panics on cascade
    /// overflow.
    pub fn run_until(&mut self, horizon: SimTime)
    where
        R: MergeTelemetry,
    {
        if let Err(e) = self.try_run_until(horizon) {
            panic!("{e}");
        }
    }

    /// One conservative window opening at `t`: every shard with work
    /// before its own window end runs independently. `base` is the
    /// lookahead-independent bound (run end, sync horizon `B`); each
    /// shard's end is `base` capped by the lookahead that applies to it
    /// — the per-shard cut-edge minimum when installed, the global
    /// minimum otherwise, nothing when no cut edge touches the shard.
    fn run_parallel_window(&mut self, t: SimTime, base: SimTime) -> Result<(), CascadeError>
    where
        R: MergeTelemetry,
    {
        self.active.clear();
        for (k, s) in self.shards.iter_mut().enumerate() {
            let s = s.as_mut().expect("shard present");
            let mut w_end = base;
            if self.has_sync {
                match self.shard_lookahead.as_ref().map(|v| v[k]) {
                    Some(Some(la)) => w_end = w_end.min(t.saturating_add(la)),
                    Some(None) => {}
                    None => w_end = w_end.min(t.saturating_add(self.lookahead)),
                }
            }
            debug_assert!(w_end > t, "conservative window must make progress");
            s.w_end = w_end;
            match s.peek() {
                Some(d) if d < w_end => {
                    s.stats.window_advances += 1;
                    self.active.push(k);
                }
                _ => s.stats.idle_windows += 1,
            }
        }
        if self.active.is_empty() {
            return Ok(());
        }
        self.dispatch(move |s| {
            let w = s.w_end;
            s.run_window(w);
        });
        self.check_failures()
    }

    /// One sync instant at `t`: due shards advance with cross-shard
    /// emission diverted to mailboxes, then mail is exchanged in
    /// deterministic rounds until none is in flight.
    fn run_sync_instant(&mut self, t: SimTime) -> Result<(), CascadeError>
    where
        R: MergeTelemetry,
    {
        self.active.clear();
        for (k, s) in self.shards.iter().enumerate() {
            let s = s.as_ref().expect("shard present");
            // Pending mail emitted exactly at `t` (adaptive fallback)
            // joins the opening round alongside the due deadlines.
            if s.peek() == Some(t) || s.peek_pending() == Some(t) {
                self.active.push(k);
            }
        }
        if !self.active.is_empty() {
            self.dispatch(move |s| s.run_sync_due(t));
            self.check_failures()?;
        }
        let mut rounds = 0u64;
        loop {
            // Gather every shard's outboxes into per-destination merge
            // buffers and sort each into (time, src_shard, seq) order.
            let mut any = false;
            for s in &mut self.shards {
                let s = s.as_mut().expect("shard present");
                for (dst, out) in s.outbox.iter_mut().enumerate() {
                    if !out.is_empty() {
                        any = true;
                        self.merge_buf[dst].append(out);
                    }
                }
            }
            if !any {
                break;
            }
            rounds += 1;
            self.mail_rounds += 1;
            if rounds > u64::from(self.shards[0].as_ref().expect("shard present").limit) {
                // Mail ping-pong at one instant that never converges is
                // the cross-shard flavor of a cascade livelock.
                let err = CascadeError::overflow(
                    t,
                    self.merge_buf.iter().flatten().next().expect("mail").1 .0,
                    rounds as u32,
                );
                self.failed = Some(err);
                for b in &mut self.merge_buf {
                    b.clear();
                }
                self.telemetry
                    .event(err.at(), "sim.cascade.overflow", err.event_detail());
                self.snapshot_phase("cascade-failure");
                return Err(err);
            }
            self.active.clear();
            for (k, s) in self.shards.iter_mut().enumerate() {
                if self.merge_buf[k].is_empty() {
                    continue;
                }
                merge_mail(&mut self.merge_buf[k]);
                let s = s.as_mut().expect("shard present");
                debug_assert!(s.inbox.is_empty());
                std::mem::swap(&mut s.inbox, &mut self.merge_buf[k]);
                self.active.push(k);
            }
            self.dispatch(move |s| s.deliver_inbox(t));
            self.check_failures()?;
        }
        Ok(())
    }

    /// The run's telemetry registry as last collected.
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Rebuilds the metric tree: every node publishes under its
    /// registration label in **global** registration order, the
    /// per-shard routers publish through [`MergeTelemetry`], and the
    /// harness adds the same `sim.*` metrics as the single-threaded
    /// collector — so the serialized tree is byte-identical to
    /// [`crate::bus::Harness::collect_telemetry`] over the same run.
    pub fn collect_telemetry(&mut self) -> &mut Registry
    where
        R: MergeTelemetry,
    {
        self.telemetry.clear_metrics();
        for gid in 0..self.owner_map.len() {
            let (s, l) = self.owner_map[gid];
            let shard = self.shards[s as usize].as_ref().expect("shard present");
            let mut scope = self.telemetry.scope(&self.labels[gid]);
            shard.nodes[l as usize].publish_telemetry(&mut scope);
        }
        let routers: Vec<&R> = self
            .shards
            .iter()
            .map(|s| &s.as_ref().expect("shard present").router)
            .collect();
        R::publish_merged(&routers, &mut self.telemetry);
        let mut sim = self.telemetry.scope("sim");
        sim.gauge("now_ns", self.now.as_ns() as i64);
        sim.counter("nodes", self.owner_map.len() as u64);
        sim.counter("cascade.overflows", u64::from(self.failed.is_some()));
        &mut self.telemetry
    }

    /// Collects the current metric tree and freezes it as a named phase
    /// snapshot.
    pub fn snapshot_phase(&mut self, name: impl Into<String>)
    where
        R: MergeTelemetry,
    {
        self.collect_telemetry();
        self.telemetry.snapshot_phase(name);
    }

    /// Collects and serializes the registry as canonical JSON.
    pub fn telemetry_json(&mut self) -> String
    where
        R: MergeTelemetry,
    {
        self.collect_telemetry();
        self.telemetry.to_json()
    }

    /// Appends the harness's dynamic state in the **same format** as
    /// [`crate::bus::Harness::persist_state`]: clock, total event count,
    /// every node in *global* registration order, telemetry history.
    /// Nothing in the bytes mentions a shard, which is what lets a
    /// snapshot taken here restore into a single-threaded harness or a
    /// sharded one with any shard count.
    ///
    /// Must be called at a sync-instant boundary — after `try_run_until`
    /// returned, when every shard's clock sits at the horizon and no
    /// mail is in flight. Routers are persisted separately by the
    /// topology layer (which knows their concrete type and how to merge
    /// the per-shard parts canonically).
    pub fn persist_state(&self, enc: &mut Enc)
    where
        C: Persist,
    {
        enc.time(self.now);
        enc.u64(self.events());
        enc.seq_len(self.owner_map.len());
        for gid in 0..self.owner_map.len() {
            let (s, l) = self.owner_map[gid];
            let shard = self.shards[s as usize].as_ref().expect("shard present");
            debug_assert!(
                shard.wave.is_empty()
                    && shard.out_buf.is_empty()
                    && shard.inbox.is_empty()
                    && shard.pending.is_empty()
                    && shard.outbox.iter().all(|o| o.is_empty())
                    && shard.segs.is_empty()
                    && shard.xlog.is_empty()
                    && shard.spec_outbox.iter().all(|o| o.is_empty()),
                "checkpoint taken off a sync-instant boundary"
            );
            shard.nodes[l as usize].persist(enc);
        }
        self.telemetry.persist(enc);
    }

    /// Applies state persisted by [`ShardedHarness::persist_state`] (or
    /// by the single-threaded harness — the formats are identical) onto
    /// this freshly rebuilt harness. The node count must match; the
    /// shard count need not. Every node is marked dirty so its shard's
    /// heaps re-key it from the restored deadline, every shard's clock
    /// is set to the checkpoint instant, and the total event count is
    /// assigned to shard 0 (only the sum is observable).
    pub fn restore_state(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError>
    where
        C: Persist,
    {
        if let Some(e) = self.failed {
            return Err(PersistError::mismatch(format!(
                "cannot restore into a poisoned harness: {e}"
            )));
        }
        let now = dec.time()?;
        let events = dec.u64()?;
        let n = dec.seq_len()?;
        if n != self.owner_map.len() {
            return Err(PersistError::mismatch(format!(
                "checkpoint has {n} nodes, rebuilt harness has {}",
                self.owner_map.len()
            )));
        }
        for gid in 0..self.owner_map.len() {
            let (s, l) = self.owner_map[gid];
            let shard = self.shards[s as usize].as_mut().expect("shard present");
            shard.nodes[l as usize].restore(dec)?;
            shard.dirty.push(l as usize);
        }
        self.telemetry.restore(dec)?;
        for (k, s) in self.shards.iter_mut().enumerate() {
            let s = s.as_mut().expect("shard present");
            s.now = now;
            s.events = if k == 0 { events } else { 0 };
        }
        self.now = now;
        Ok(())
    }

    /// [`ShardedHarness::persist_state`] through a bounded chunk
    /// buffer — same bytes, same framing contract as
    /// [`crate::bus::Harness::persist_state_chunked`], so the two
    /// engines' streams are interchangeable.
    pub fn persist_state_chunked(&self, w: &mut ChunkedWriter<'_>) -> Result<(), PersistError>
    where
        C: Persist,
    {
        let enc = w.enc();
        enc.time(self.now);
        enc.u64(self.events());
        enc.seq_len(self.owner_map.len());
        w.flush_chunk()?;
        for gid in 0..self.owner_map.len() {
            let (s, l) = self.owner_map[gid];
            let shard = self.shards[s as usize].as_ref().expect("shard present");
            debug_assert!(
                shard.wave.is_empty()
                    && shard.out_buf.is_empty()
                    && shard.inbox.is_empty()
                    && shard.pending.is_empty()
                    && shard.outbox.iter().all(|o| o.is_empty())
                    && shard.segs.is_empty()
                    && shard.xlog.is_empty()
                    && shard.spec_outbox.iter().all(|o| o.is_empty()),
                "checkpoint taken off a sync-instant boundary"
            );
            shard.nodes[l as usize].persist(w.enc());
            w.unit()?;
        }
        w.flush_chunk()?;
        self.telemetry.persist(w.enc());
        w.flush_chunk()?;
        Ok(())
    }

    /// Applies a stream written by either engine's
    /// `persist_state_chunked` onto this freshly rebuilt harness; see
    /// [`crate::bus::Harness::restore_state_chunked`] for the argument
    /// contract.
    pub fn restore_state_chunked(
        &mut self,
        prefix: &mut Dec<'_>,
        r: &mut ChunkedReader<'_>,
        buf: &mut Vec<u8>,
    ) -> Result<(), PersistError>
    where
        C: Persist,
    {
        if let Some(e) = self.failed {
            return Err(PersistError::mismatch(format!(
                "cannot restore into a poisoned harness: {e}"
            )));
        }
        let now = prefix.time()?;
        let events = prefix.u64()?;
        // Bare u32: the node payloads live in later chunks, so the
        // remaining-bytes bound of `seq_len` would misfire.
        let n = prefix.u32()? as usize;
        if n != self.owner_map.len() {
            return Err(PersistError::mismatch(format!(
                "checkpoint has {n} nodes, rebuilt harness has {}",
                self.owner_map.len()
            )));
        }
        if prefix.remaining() != 0 {
            return Err(PersistError::mismatch(
                "streamed checkpoint prefix chunk does not end at the node-count field",
            ));
        }
        let mut gid = 0;
        while gid < n {
            if !r.next_chunk_into(buf)? {
                return Err(PersistError::UnexpectedEof);
            }
            let mut dec = Dec::new(buf);
            while gid < n && dec.remaining() > 0 {
                let (s, l) = self.owner_map[gid];
                let shard = self.shards[s as usize].as_mut().expect("shard present");
                shard.nodes[l as usize].restore(&mut dec)?;
                shard.dirty.push(l as usize);
                gid += 1;
            }
            dec.finish()?;
        }
        if !r.next_chunk_into(buf)? {
            return Err(PersistError::UnexpectedEof);
        }
        let mut dec = Dec::new(buf);
        self.telemetry.restore(&mut dec)?;
        dec.finish()?;
        for (k, s) in self.shards.iter_mut().enumerate() {
            let s = s.as_mut().expect("shard present");
            s.now = now;
            s.events = if k == 0 { events } else { 0 };
        }
        self.now = now;
        Ok(())
    }

    /// Scheduler-execution counters (windows, sync instants, mailbox
    /// traffic, idle stalls) in a registry of their own, under a
    /// `sched` namespace with per-shard `sched.shard{k}` scopes.
    ///
    /// Deliberately **not** part of [`ShardedHarness::telemetry`]: the
    /// simulation's metric tree is pinned by golden digests and must
    /// not vary with the shard count; these counters exist precisely to
    /// vary with it.
    pub fn exec_telemetry(&self) -> Registry {
        let mut reg = Registry::new();
        let mut sched = reg.scope("sched");
        sched.counter("windows", self.windows);
        sched.counter("sync_instants", self.sync_instants);
        sched.counter("mail_rounds", self.mail_rounds);
        let (mut rollbacks, mut rb_events, mut snap_bytes) = (0u64, 0u64, 0u64);
        for s in &self.shards {
            let s = s.as_ref().expect("shard present");
            rollbacks += s.rollbacks;
            rb_events += s.rolled_back_events;
            snap_bytes += s.snapshot_bytes;
        }
        sched.counter("gvt_rounds", self.gvt_rounds);
        sched.counter("rollbacks", rollbacks);
        sched.counter("events_rolled_back", rb_events);
        sched.counter("snapshot_bytes", snap_bytes);
        for k in 0..self.shards.len() {
            let stats = {
                let s = self.shards[k].as_ref().expect("shard present");
                let mut st = s.stats;
                st.events = s.events;
                st
            };
            let mut shard = sched.scope(&format!("shard{k}"));
            shard.counter("events", stats.events);
            shard.counter("idle_windows", stats.idle_windows);
            shard.counter("mailbox_recv", stats.mailbox_recv);
            shard.counter("mailbox_sent", stats.mailbox_sent);
            shard.counter("window_advances", stats.window_advances);
        }
        reg
    }
}

/// Merging per-shard router state into one telemetry tree.
///
/// The sharded harness gives every shard its own router instance;
/// absorbed state (measurement taps, counters, logs) lands in the
/// router of whichever shard routed it. To publish the same tree a
/// single shared router would have produced, the router type merges
/// its parts — `parts[k]` is shard `k`'s router, in shard order.
///
/// Implementations must reproduce the byte-exact output of
/// [`Router::publish_telemetry`] on an equivalent single-threaded run:
/// the golden-digest tests hold them to it.
pub trait MergeTelemetry {
    /// Publishes the merged view of `parts` into `reg`.
    fn publish_merged(parts: &[&Self], reg: &mut Registry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Harness;
    use crate::telemetry::Value;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    /// Walks every permutation of `0..n` (Heap's algorithm, no RNG) and
    /// hands each to `f` — same enumeration as the heap property tests.
    fn for_each_permutation(n: usize, mut f: impl FnMut(&[usize])) {
        let mut a: Vec<usize> = (0..n).collect();
        let mut c = vec![0usize; n];
        f(&a);
        let mut i = 0;
        while i < n {
            if c[i] < i {
                if i % 2 == 0 {
                    a.swap(0, i);
                } else {
                    a.swap(c[i], i);
                }
                f(&a);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn mail_merge_order_is_total_for_all_arrival_orders() {
        // Keys with deliberate collisions on every prefix: equal times
        // across shards, equal (time, shard) pairs with distinct seqs.
        // Whatever order the workers delivered their outboxes in, the
        // merged mailbox must come out in one canonical order.
        let keys = [
            MailKey {
                at: t(50),
                src_shard: 1,
                seq: 2,
            },
            MailKey {
                at: t(20),
                src_shard: 0,
                seq: 7,
            },
            MailKey {
                at: t(20),
                src_shard: 2,
                seq: 1,
            },
            MailKey {
                at: t(20),
                src_shard: 0,
                seq: 3,
            },
            MailKey {
                at: t(50),
                src_shard: 0,
                seq: 9,
            },
            MailKey {
                at: t(10),
                src_shard: 3,
                seq: 4,
            },
        ];
        let mut expected: Vec<(MailKey, usize)> =
            keys.iter().enumerate().map(|(p, &k)| (k, p)).collect();
        expected.sort_by_key(|m| m.0);
        let mut checked = 0u32;
        for_each_permutation(keys.len(), |perm| {
            let mut mail: Vec<(MailKey, usize)> = perm.iter().map(|&p| (keys[p], p)).collect();
            merge_mail(&mut mail);
            assert_eq!(mail, expected, "arrival order {perm:?}");
            checked += 1;
        });
        assert_eq!(checked, 720, "all 6! arrival orders enumerated");
    }

    #[test]
    fn mail_merge_is_stable_for_tied_keys() {
        // Duplicate full keys cannot occur in the engine (seq is unique
        // per source shard) but the merge contract is still pinned:
        // ties keep push order, so the order is well-defined for any
        // input.
        let dup = MailKey {
            at: t(5),
            src_shard: 1,
            seq: 1,
        };
        let early = MailKey {
            at: t(1),
            src_shard: 9,
            seq: 9,
        };
        let mut mail = vec![(dup, "first"), (early, "zero"), (dup, "second")];
        merge_mail(&mut mail);
        assert_eq!(mail, vec![(early, "zero"), (dup, "first"), (dup, "second")]);
    }

    #[test]
    fn adaptive_bounds_stay_inside_the_conservative_envelope() {
        // Enumerates every assignment (permutation of a fixed deadline
        // pool, Heap's algorithm, no RNG) of per-shard earliest-work and
        // sync-deadline instants over two influence shapes, and pins the
        // two orderings the protocol's correctness argument rests on:
        //
        // * safety — the adaptive bound never exceeds the conservative
        //   per-edge bound `min(b[o], t[o] + la)` of ANY direct
        //   influencer `o` (shard `o` could act at `t[o]`, so nothing
        //   it sends can be ruled out past that),
        // * progress — the adaptive bound is never narrower than the
        //   fixed-window bound `min(run_end, B_min, T + la_in)`, so
        //   adaptive mode never erects a barrier fixed mode would not.
        let pool: [Option<SimTime>; 6] = [
            None,
            Some(t(10)),
            Some(t(12)),
            Some(t(25)),
            Some(t(40)),
            Some(t(100)),
        ];
        let run_end = t(1_000);
        // A 3-shard chain (asymmetric lookaheads) and a full mesh with
        // per-edge lookaheads all distinct.
        let chain: Vec<Option<Dur>> = vec![
            None,
            Some(Dur::from_ns(5)),
            None,
            Some(Dur::from_ns(5)),
            None,
            Some(Dur::from_ns(17)),
            None,
            Some(Dur::from_ns(17)),
            None,
        ];
        let mesh: Vec<Option<Dur>> = (0..9)
            .map(|i| {
                let (o, k) = (i / 3, i % 3);
                (o != k).then(|| Dur::from_ns(3 + 2 * o as u64 + k as u64))
            })
            .collect();
        let mut a_buf = Vec::new();
        let mut e_buf = Vec::new();
        let mut checked = 0u32;
        for influence in [&chain, &mesh] {
            for_each_permutation(pool.len(), |perm| {
                let mut tv = [None; 3];
                let mut bv = [None; 3];
                for k in 0..3 {
                    tv[k] = pool[perm[k]];
                    // The sync heap is a subset of the shard's heap, so
                    // a sync deadline can never precede the earliest
                    // local work (and an empty shard has none).
                    bv[k] = match (tv[k], pool[perm[k + 3]]) {
                        (Some(tk), Some(raw)) => Some(raw.max(tk)),
                        _ => None,
                    };
                }
                checked += 1;
                let Some(t_min) = tv.iter().flatten().copied().min() else {
                    return;
                };
                adaptive_bounds(&tv, &bv, influence, run_end, &mut a_buf, &mut e_buf);
                let b_min = bv.iter().flatten().copied().min();
                for k in 0..3 {
                    for o in 0..3 {
                        if o == k {
                            continue;
                        }
                        let Some(la) = influence[o * 3 + k] else {
                            continue;
                        };
                        let direct =
                            crate::engine::earliest([bv[o], tv[o].map(|x| x.saturating_add(la))]);
                        if let Some(direct) = direct {
                            assert!(
                                e_buf[k] <= direct,
                                "safety: E[{k}]={} exceeds direct bound {} of edge {o}→{k} \
                                 (t={tv:?} b={bv:?})",
                                e_buf[k],
                                direct
                            );
                        }
                    }
                    let la_in = (0..3)
                        .filter(|&o| o != k)
                        .filter_map(|o| influence[o * 3 + k])
                        .min();
                    let mut fixed = run_end;
                    if let Some(b) = b_min {
                        fixed = fixed.min(b);
                    }
                    if let Some(la) = la_in {
                        fixed = fixed.min(t_min.saturating_add(la));
                    }
                    assert!(
                        e_buf[k] >= fixed,
                        "progress: E[{k}]={} narrower than fixed bound {} \
                         (t={tv:?} b={bv:?})",
                        e_buf[k],
                        fixed
                    );
                }
            });
        }
        assert_eq!(
            checked,
            2 * 720,
            "all arrangements × both shapes enumerated"
        );
    }

    // ------------------------------------------------------------------
    // A toy two-shard topology exercising windows, sync instants and
    // mailboxes, checked for bit-identical results against the
    // single-threaded harness running the same node set.
    //
    // Node graph: a `Source` on shard 0 fires every `period`, routed as
    // a command into a `Relay` (sync-class, shard 0) that holds each
    // item for `latency` and then emits it; the relay's emissions are
    // routed to a `Counter` on shard 1.
    // ------------------------------------------------------------------

    #[derive(Debug, PartialEq)]
    enum Toy {
        Source {
            next: Option<SimTime>,
            period: Dur,
            remaining: u32,
            fired: u64,
        },
        Relay {
            ready: std::collections::VecDeque<SimTime>,
            latency: Dur,
            forwarded: u64,
        },
        Counter {
            received: u64,
            last: Option<SimTime>,
        },
    }

    impl Component for Toy {
        type Cmd = u32;
        type Out = u32;

        fn next_deadline(&self) -> Option<SimTime> {
            match self {
                Toy::Source { next, .. } => *next,
                Toy::Relay { ready, .. } => ready.front().copied(),
                Toy::Counter { .. } => None,
            }
        }

        fn advance(&mut self, now: SimTime, sink: &mut Vec<u32>) {
            match self {
                Toy::Source {
                    next,
                    period,
                    remaining,
                    fired,
                } => {
                    if *next == Some(now) {
                        *fired += 1;
                        *remaining -= 1;
                        sink.push(0);
                        *next = (*remaining > 0).then(|| now + *period);
                    }
                }
                Toy::Relay {
                    ready, forwarded, ..
                } => {
                    while ready.front().is_some_and(|&r| r <= now) {
                        ready.pop_front();
                        *forwarded += 1;
                        sink.push(1);
                    }
                }
                Toy::Counter { .. } => {}
            }
        }

        fn handle(&mut self, now: SimTime, _cmd: u32, _sink: &mut Vec<u32>) {
            match self {
                Toy::Source { .. } => {}
                Toy::Relay { ready, latency, .. } => ready.push_back(now + *latency),
                Toy::Counter { received, last } => {
                    *received += 1;
                    *last = Some(now);
                }
            }
        }

        fn publish_telemetry(&self, scope: &mut crate::telemetry::Scope<'_>) {
            match self {
                Toy::Source { fired, .. } => scope.counter("fired", *fired),
                Toy::Relay { forwarded, .. } => scope.counter("forwarded", *forwarded),
                Toy::Counter { received, last } => {
                    scope.counter("received", *received);
                    scope.gauge("last_ns", last.map(|t| t.as_ns() as i64).unwrap_or(-1));
                }
            }
        }
    }

    impl Persist for Toy {
        fn persist(&self, enc: &mut Enc) {
            match self {
                Toy::Source {
                    next,
                    period,
                    remaining,
                    fired,
                } => {
                    enc.u8(0);
                    enc.opt(next.as_ref(), |e, t| e.time(*t));
                    enc.dur(*period);
                    enc.u32(*remaining);
                    enc.u64(*fired);
                }
                Toy::Relay {
                    ready,
                    latency,
                    forwarded,
                } => {
                    enc.u8(1);
                    enc.seq_len(ready.len());
                    for &r in ready {
                        enc.time(r);
                    }
                    enc.dur(*latency);
                    enc.u64(*forwarded);
                }
                Toy::Counter { received, last } => {
                    enc.u8(2);
                    enc.u64(*received);
                    enc.opt(last.as_ref(), |e, t| e.time(*t));
                }
            }
        }

        fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError> {
            *self = match dec.u8()? {
                0 => Toy::Source {
                    next: dec.opt(|d| d.time())?,
                    period: dec.dur()?,
                    remaining: dec.u32()?,
                    fired: dec.u64()?,
                },
                1 => {
                    let n = dec.seq_len()?;
                    let mut ready = std::collections::VecDeque::with_capacity(n);
                    for _ in 0..n {
                        ready.push_back(dec.time()?);
                    }
                    Toy::Relay {
                        ready,
                        latency: dec.dur()?,
                        forwarded: dec.u64()?,
                    }
                }
                2 => Toy::Counter {
                    received: dec.u64()?,
                    last: dec.opt(|d| d.time())?,
                },
                tag => return Err(PersistError::BadTag { what: "Toy", tag }),
            };
            Ok(())
        }
    }

    /// Static toy wiring: source(0) → relay(1) → counter(2); absorbed
    /// routing is counted so router-state merging is exercised too.
    struct ToyRouter {
        routed: u64,
    }

    impl Persist for ToyRouter {
        fn persist(&self, enc: &mut Enc) {
            enc.u64(self.routed);
        }
        fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError> {
            self.routed = dec.u64()?;
            Ok(())
        }
    }

    impl Router<Toy> for ToyRouter {
        fn route(&mut self, _now: SimTime, src: NodeId, _event: u32, sink: &mut CmdSink<u32>) {
            self.routed += 1;
            match src.0 {
                0 => sink.push(NodeId(1), 0),
                1 => sink.push(NodeId(2), 0),
                _ => {}
            }
        }

        fn publish_telemetry(&self, reg: &mut Registry) {
            reg.counter("toy.routed", self.routed);
        }
    }

    impl MergeTelemetry for ToyRouter {
        fn publish_merged(parts: &[&Self], reg: &mut Registry) {
            reg.counter("toy.routed", parts.iter().map(|r| r.routed).sum());
        }
    }

    fn toy_nodes() -> [Toy; 3] {
        [
            Toy::Source {
                next: Some(t(1_000)),
                period: Dur::from_ns(700),
                remaining: 40,
                fired: 0,
            },
            Toy::Relay {
                ready: std::collections::VecDeque::new(),
                latency: Dur::from_ns(350),
                forwarded: 0,
            },
            Toy::Counter {
                received: 0,
                last: None,
            },
        ]
    }

    #[test]
    fn sharded_toy_matches_single_threaded_harness() {
        let horizon = t(40_000);
        // Ground truth: one harness, one thread.
        let mut single = Harness::new(ToyRouter { routed: 0 }, 64);
        for (node, label) in toy_nodes().into_iter().zip(["src", "relay", "dst"]) {
            single.add_node_labeled(node, label);
        }
        single.run_until(horizon);
        let single_json = single.telemetry_json();

        for mode in [WindowMode::FixedLookahead, WindowMode::Adaptive] {
            // Sharded: relay is the sync node; its 350 ns latency is the
            // lookahead. Counter lives alone on shard 1.
            let mut sharded = ShardedHarness::new(
                vec![ToyRouter { routed: 0 }, ToyRouter { routed: 0 }],
                64,
                Dur::from_ns(350),
            );
            let [src, relay, dst] = toy_nodes();
            sharded.add_node_labeled(src, "src", 0, false);
            sharded.add_node_labeled(relay, "relay", 0, true);
            sharded.add_node_labeled(dst, "dst", 1, false);
            sharded.set_window_mode(mode);
            // Force pool dispatch even on single-core machines (the
            // default caps threads at hardware parallelism): the
            // parallel code path must produce the same bytes as the
            // inline one.
            sharded.set_threads(2);
            sharded.run_until(horizon);

            assert_eq!(sharded.telemetry_json(), single_json, "{mode:?}");
            assert_eq!(sharded.events(), single.events(), "{mode:?}");
            assert_eq!(sharded.now(), single.now(), "{mode:?}");
            // The cross-shard path really was exercised through
            // mailboxes in both modes.
            let sent: u64 = (0..2).map(|k| sharded.shard_stats(k).mailbox_sent).sum();
            assert_eq!(sent, 40, "every relayed item crossed the boundary");
            let sync_instants = sharded
                .exec_telemetry()
                .counter_value("sched.sync_instants");
            match mode {
                // Fixed windows pay a barrier for every relay hand-off…
                WindowMode::FixedLookahead => assert!(sync_instants > Some(0)),
                // …adaptive mode pipelines the whole chain: shard 0 runs
                // to the horizon in one window (nothing influences it),
                // then shard 1 drains the 40 mailed items in a second.
                WindowMode::Adaptive => {
                    assert_eq!(sync_instants, Some(0), "no barrier needed");
                    let reg = sharded.exec_telemetry();
                    assert_eq!(reg.counter_value("sched.windows"), Some(2));
                }
            }
        }

        // Optimistic: speculate past the conservative bounds, same bytes.
        for threads in [1, 2] {
            let mut opt = ShardedHarness::new(
                vec![ToyRouter { routed: 0 }, ToyRouter { routed: 0 }],
                64,
                Dur::from_ns(350),
            );
            let [src, relay, dst] = toy_nodes();
            opt.add_node_labeled(src, "src", 0, false);
            opt.add_node_labeled(relay, "relay", 0, true);
            opt.add_node_labeled(dst, "dst", 1, false);
            opt.set_exec_mode(ExecMode::Optimistic);
            opt.set_snapshot_cadence(4);
            opt.set_threads(threads);
            opt.run_until(horizon);
            assert_eq!(opt.telemetry_json(), single_json, "optimistic/{threads}");
            assert_eq!(opt.events(), single.events(), "optimistic/{threads}");
            assert_eq!(opt.now(), single.now(), "optimistic/{threads}");
            let reg = opt.exec_telemetry();
            assert!(reg.counter_value("sched.gvt_rounds") > Some(0));
        }
    }

    #[test]
    fn independent_shards_run_without_sync_nodes() {
        // No sync nodes at all: each shard gets one self-contained
        // source; the run must cover the horizon in one window per
        // shard with zero mailbox traffic.
        struct Absorb;
        impl Router<Toy> for Absorb {
            fn route(&mut self, _now: SimTime, _src: NodeId, _e: u32, _sink: &mut CmdSink<u32>) {}
        }
        impl Persist for Absorb {
            fn persist(&self, _enc: &mut Enc) {}
            fn restore(&mut self, _dec: &mut Dec<'_>) -> Result<(), PersistError> {
                Ok(())
            }
        }
        impl MergeTelemetry for Absorb {
            fn publish_merged(_parts: &[&Self], _reg: &mut Registry) {}
        }
        let mut sharded = ShardedHarness::new(vec![Absorb, Absorb], 64, Dur::ZERO);
        for k in 0..2 {
            sharded.add_node_labeled(
                Toy::Source {
                    next: Some(t(10 + k as u64)),
                    period: Dur::from_ns(100),
                    remaining: 25,
                    fired: 0,
                },
                format!("s{k}"),
                k,
                false,
            );
        }
        sharded.run_until(t(1_000_000));
        let reg = sharded.exec_telemetry();
        assert_eq!(reg.counter_value("sched.sync_instants"), Some(0));
        assert_eq!(reg.counter_value("sched.mail_rounds"), Some(0));
        let collected = sharded.collect_telemetry();
        assert_eq!(collected.counter_value("s0.fired"), Some(25));
        assert_eq!(collected.counter_value("s1.fired"), Some(25));
        assert_eq!(sharded.events(), 50);
    }

    #[test]
    fn cross_shard_emission_from_a_window_is_a_typed_error() {
        // The source routes straight to a node on the other shard with
        // no sync-class relay in between: the first window must fail
        // with a typed CrossShard error rather than deliver mail late
        // (or kill the process, as it did before the error existed).
        struct BadRouter;
        impl Router<Toy> for BadRouter {
            fn route(&mut self, _now: SimTime, src: NodeId, _e: u32, sink: &mut CmdSink<u32>) {
                if src.0 == 0 {
                    sink.push(NodeId(1), 0);
                }
            }
        }
        impl Persist for BadRouter {
            fn persist(&self, _enc: &mut Enc) {}
            fn restore(&mut self, _dec: &mut Dec<'_>) -> Result<(), PersistError> {
                Ok(())
            }
        }
        impl MergeTelemetry for BadRouter {
            fn publish_merged(_parts: &[&Self], _reg: &mut Registry) {}
        }
        let mut sharded = ShardedHarness::new(vec![BadRouter, BadRouter], 64, Dur::from_ns(1));
        sharded.add_node_labeled(
            Toy::Source {
                next: Some(t(5)),
                period: Dur::from_ns(5),
                remaining: 1,
                fired: 0,
            },
            "src",
            0,
            false,
        );
        sharded.add_node_labeled(
            Toy::Counter {
                received: 0,
                last: None,
            },
            "dst",
            1,
            true, // sync-class but idle: windows still open, then src trips the guard
        );
        let err = sharded.try_run_until(t(1_000)).unwrap_err();
        match err {
            CascadeError::CrossShard {
                at,
                src,
                dst,
                src_shard,
                dst_shard,
            } => {
                assert_eq!(at, t(5));
                assert_eq!(src, NodeId(0));
                assert_eq!(dst, NodeId(1));
                assert_eq!((src_shard, dst_shard), (0, 1));
            }
            other => panic!("expected CrossShard, got {other:?}"),
        }
        assert!(err.to_string().contains("protocol violation"), "{err}");
        // Poisoned like any other cascade failure, with the trail.
        assert_eq!(sharded.failure(), Some(err));
        assert_eq!(sharded.try_run_until(t(2_000)), Err(err));
        let reg = sharded.telemetry();
        assert_eq!(reg.events().len(), 1);
        assert!(reg.events()[0].detail.contains("cross-shard emission"));
    }

    #[test]
    fn sync_instant_failure_poisons_with_a_telemetry_trail() {
        // Two echoes wired to each other across the boundary: every
        // delivered command re-emits immediately, so each mailbox
        // exchange round at the first instant produces the next — the
        // round guard must trip like a same-instant cascade overflow.
        struct Echo {
            armed: bool,
        }
        impl Component for Echo {
            type Cmd = u32;
            type Out = u32;
            fn next_deadline(&self) -> Option<SimTime> {
                self.armed.then(|| SimTime::from_ns(10))
            }
            fn advance(&mut self, _now: SimTime, sink: &mut Vec<u32>) {
                if self.armed {
                    self.armed = false;
                    sink.push(0);
                }
            }
            fn handle(&mut self, _now: SimTime, v: u32, sink: &mut Vec<u32>) {
                sink.push(v + 1);
            }
        }
        impl Persist for Echo {
            fn persist(&self, enc: &mut Enc) {
                enc.bool(self.armed);
            }
            fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError> {
                self.armed = dec.bool()?;
                Ok(())
            }
        }
        struct PingPong;
        impl Persist for PingPong {
            fn persist(&self, _enc: &mut Enc) {}
            fn restore(&mut self, _dec: &mut Dec<'_>) -> Result<(), PersistError> {
                Ok(())
            }
        }
        impl Router<Echo> for PingPong {
            fn route(&mut self, _now: SimTime, src: NodeId, event: u32, sink: &mut CmdSink<u32>) {
                // echo 0 (shard 0) ↔ echo 1 (shard 1)
                sink.push(NodeId(1 - src.0), event);
            }
        }
        impl MergeTelemetry for PingPong {
            fn publish_merged(_parts: &[&Self], _reg: &mut Registry) {}
        }
        let mut sharded = ShardedHarness::new(vec![PingPong, PingPong], 8, Dur::from_ns(1));
        sharded.add_node_labeled(Echo { armed: true }, "a", 0, true);
        sharded.add_node_labeled(Echo { armed: false }, "b", 1, true);
        let err = sharded.try_run_until(t(100)).unwrap_err();
        assert_eq!(err.at(), t(10));
        assert!(err.steps() > 8);
        assert_eq!(sharded.failure(), Some(err));
        assert_eq!(sharded.try_run_until(t(200)), Err(err));
        let reg = sharded.telemetry();
        assert_eq!(reg.events().len(), 1);
        assert_eq!(reg.events()[0].path, "sim.cascade.overflow");
        let snap = reg.phase("cascade-failure").expect("final snapshot");
        assert!(matches!(
            snap.get("sim.cascade.overflows"),
            Some(Value::Counter(1))
        ));
    }
}
