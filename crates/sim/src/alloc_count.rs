//! An opt-in counting global allocator (feature `alloc-count`).
//!
//! Wrap the system allocator in [`CountingAlloc`] and install it with
//! `#[global_allocator]` to count every heap allocation in the process:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ctms_sim::alloc_count::CountingAlloc = ctms_sim::alloc_count::CountingAlloc::new();
//! ```
//!
//! [`allocations`](CountingAlloc::allocations) reads the running count,
//! so a test (or the `ctms-bench` `perf` binary) can snapshot it around
//! a measured region and assert — not merely claim — that the
//! scheduler's steady state performs zero allocations per event.
//! Reallocation (`Vec` growth) counts too: capacity retained across
//! steps is precisely what the hot path promises.
//!
//! Besides the count, the allocator tracks **live bytes** and their
//! **high-water mark**: [`current_bytes`](CountingAlloc::current_bytes)
//! is the total outstanding (allocated minus freed) and
//! [`peak_bytes`](CountingAlloc::peak_bytes) the maximum it has reached
//! since the last [`reset_peak`](CountingAlloc::reset_peak). The scale
//! section of the perf harness brackets a topology build or a streamed
//! checkpoint with these to measure peak memory, not just churn.
//!
//! The counters use relaxed atomics: the measured regions are
//! single-threaded simulations, and cross-thread precision is not needed
//! — only monotonic per-thread accuracy. The peak update is a
//! `fetch_max`, so concurrent allocations can under-report a transient
//! peak by at most the in-flight amount — fine for a measurement
//! harness, and exact in the single-threaded regions it brackets.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// The system allocator with allocation and live-byte counters bolted on.
pub struct CountingAlloc {
    allocs: AtomicU64,
    live: AtomicU64,
    peak: AtomicU64,
}

impl CountingAlloc {
    /// A fresh counting allocator (all counters start at zero).
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Self {
        CountingAlloc {
            allocs: AtomicU64::new(0),
            live: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Heap allocations (including reallocations) observed so far.
    pub fn allocations(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Bytes currently outstanding (allocated and not yet freed).
    pub fn current_bytes(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of [`current_bytes`](CountingAlloc::current_bytes)
    /// since the last [`reset_peak`](CountingAlloc::reset_peak).
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Restarts the high-water mark from the current live total, so a
    /// harness can measure the peak of one bracketed region.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn grow(&self, bytes: usize) {
        let live = self
            .live
            .fetch_add(bytes as u64, Ordering::Relaxed)
            .wrapping_add(bytes as u64);
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn shrink(&self, bytes: usize) {
        self.live.fetch_sub(bytes as u64, Ordering::Relaxed);
    }
}

// SAFETY: defers entirely to `System`; the counters have no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            self.grow(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.shrink(layout.size());
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            self.grow(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // The old block is gone, the new one is live.
            self.shrink(layout.size());
            self.grow(new_size);
        }
        new_ptr
    }
}
