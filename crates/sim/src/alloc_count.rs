//! An opt-in counting global allocator (feature `alloc-count`).
//!
//! Wrap the system allocator in [`CountingAlloc`] and install it with
//! `#[global_allocator]` to count every heap allocation in the process:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ctms_sim::alloc_count::CountingAlloc = ctms_sim::alloc_count::CountingAlloc::new();
//! ```
//!
//! [`allocations`](CountingAlloc::allocations) reads the running count,
//! so a test (or the `ctms-bench` `perf` binary) can snapshot it around
//! a measured region and assert — not merely claim — that the
//! scheduler's steady state performs zero allocations per event.
//! Reallocation (`Vec` growth) counts too: capacity retained across
//! steps is precisely what the hot path promises.
//!
//! The counter uses relaxed atomics: the measured regions are
//! single-threaded simulations, and cross-thread precision is not needed
//! — only monotonic per-thread accuracy.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// The system allocator with an allocation counter bolted on.
pub struct CountingAlloc {
    allocs: AtomicU64,
}

impl CountingAlloc {
    /// A fresh counting allocator (count starts at zero).
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Self {
        CountingAlloc {
            allocs: AtomicU64::new(0),
        }
    }

    /// Heap allocations (including reallocations) observed so far.
    pub fn allocations(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }
}

// SAFETY: defers entirely to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
