//! Event/edge tracing.
//!
//! The paper instruments four *points of measurement* (§5.2): the VCA IRQ
//! line, VCA handler entry, the pre-transmit point in the Token Ring driver,
//! and the CTMSP-identified point on the receiver. Each is a named signal on
//! which timestamped occurrences ("edges") are recorded. [`EdgeLog`] is the
//! ground-truth record; the measurement-tool models in `ctms-measure` read
//! it through their own error models (clock quantization, service-loop
//! delay, …).

use crate::persist::{Dec, Enc, Persist, PersistError};
use crate::time::{Dur, SimTime};

/// One timestamped occurrence on a signal, with an optional tag
/// (the paper tags transmit/receive edges with the low 7 bits of the packet
/// number, §5.2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Exact simulation time of the occurrence.
    pub at: SimTime,
    /// Free-form tag; packet sequence number for packet edges.
    pub tag: u64,
}

/// An append-only log of edges on one signal.
#[derive(Clone, Debug, Default)]
pub struct EdgeLog {
    name: String,
    edges: Vec<Edge>,
}

impl EdgeLog {
    /// Creates an empty log for the named signal.
    pub fn new(name: impl Into<String>) -> Self {
        EdgeLog {
            name: name.into(),
            edges: Vec::new(),
        }
    }

    /// The signal name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records an occurrence.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous edge: signals are recorded in
    /// simulation order.
    pub fn record(&mut self, at: SimTime, tag: u64) {
        if let Some(last) = self.edges.last() {
            assert!(
                at >= last.at,
                "EdgeLog {}: non-monotonic record {at} after {}",
                self.name,
                last.at
            );
        }
        self.edges.push(Edge { at, tag });
    }

    /// All recorded edges, in time order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Discards every edge past the first `len`, rewinding the log to a
    /// state it previously passed through. The optimistic scheduler's
    /// rollback images store edge-log *lengths* as truncation marks
    /// rather than copying the edges, so undoing speculation costs
    /// O(edges speculated), not O(edges ever recorded).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the current length — a truncation mark
    /// can only come from this log's own past.
    pub fn truncate(&mut self, len: usize) {
        assert!(
            len <= self.edges.len(),
            "EdgeLog {}: truncation mark {len} beyond {} recorded edges",
            self.name,
            self.edges.len()
        );
        self.edges.truncate(len);
    }

    /// Number of recorded edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Inter-occurrence intervals (the paper's histograms 1–4 are exactly
    /// this on the four measurement points).
    pub fn inter_occurrence(&self) -> Vec<Dur> {
        self.edges
            .windows(2)
            .map(|w| w[1].at.since(w[0].at))
            .collect()
    }

    /// Differences between *like occurrences* of two signals (the paper's
    /// histograms 5–7): for every tag present in both logs, the delta from
    /// this log's edge to `later`'s edge with the same tag.
    ///
    /// Edges whose counterpart is missing (lost packets) are skipped.
    /// If a tag repeats (duplicate packets), occurrences are paired in
    /// order of appearance.
    pub fn deltas_to(&self, later: &EdgeLog) -> Vec<Dur> {
        use std::collections::HashMap;
        // Index `later`'s edges by tag, preserving order per tag.
        let mut by_tag: HashMap<u64, std::collections::VecDeque<SimTime>> = HashMap::new();
        for e in &later.edges {
            by_tag.entry(e.tag).or_default().push_back(e.at);
        }
        let mut out = Vec::new();
        for e in &self.edges {
            if let Some(q) = by_tag.get_mut(&e.tag) {
                if let Some(t) = q.pop_front() {
                    if let Some(d) = t.checked_since(e.at) {
                        out.push(d);
                    }
                }
            }
        }
        out
    }

    /// Pairs edges positionally with `later` (k-th with k-th), for signals
    /// without meaningful tags. Unpaired trailing edges are skipped, as are
    /// negative deltas.
    pub fn deltas_positional(&self, later: &EdgeLog) -> Vec<Dur> {
        self.edges
            .iter()
            .zip(later.edges.iter())
            .filter_map(|(a, b)| b.at.checked_since(a.at))
            .collect()
    }

    /// A 64-bit FNV-1a digest over every `(at, tag)` pair (the name is
    /// excluded, so relabelling a signal does not change its digest).
    /// Used by determinism regression tests: a fixed seed must produce a
    /// bit-identical log, hence a stable digest.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for e in &self.edges {
            eat(e.at.as_ns());
            eat(e.tag);
        }
        h
    }
}

impl Persist for EdgeLog {
    /// Encodes the name and every `(at, tag)` pair; restore replaces the
    /// whole log (including the name, so `EdgeLog::new("")` is a valid
    /// decode target).
    fn persist(&self, enc: &mut Enc) {
        enc.str(&self.name);
        enc.seq_len(self.edges.len());
        for e in &self.edges {
            enc.time(e.at);
            enc.u64(e.tag);
        }
    }
    fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError> {
        self.name = dec.str()?;
        self.edges = dec.seq(|d| {
            Ok(Edge {
                at: d.time()?,
                tag: d.u64()?,
            })
        })?;
        Ok(())
    }
}

impl crate::telemetry::Instrument for EdgeLog {
    /// Registers the log's summary: edge count, first/last instants, and
    /// the FNV-1a content digest (as hex text, so the full 64 bits
    /// survive). Full edge streams stay in the log itself — the registry
    /// carries the diffable fingerprint.
    fn publish(&self, scope: &mut crate::telemetry::Scope<'_>) {
        scope.counter("edges", self.edges.len() as u64);
        scope.text("digest", format!("{:#018X}", self.digest()));
        if let (Some(first), Some(last)) = (self.edges.first(), self.edges.last()) {
            scope.gauge("first_ns", first.at.as_ns() as i64);
            scope.gauge("last_ns", last.at.as_ns() as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_us(us)
    }

    #[test]
    fn inter_occurrence_intervals() {
        let mut log = EdgeLog::new("vca_irq");
        for k in 0..4 {
            log.record(t(12_000 * k), k);
        }
        assert_eq!(
            log.inter_occurrence(),
            vec![Dur::from_ms(12), Dur::from_ms(12), Dur::from_ms(12)]
        );
        assert_eq!(log.len(), 4);
        assert!(!log.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-monotonic")]
    fn non_monotonic_record_panics() {
        let mut log = EdgeLog::new("x");
        log.record(t(10), 0);
        log.record(t(5), 1);
    }

    #[test]
    fn deltas_by_tag_skip_lost_packets() {
        let mut tx = EdgeLog::new("tx");
        let mut rx = EdgeLog::new("rx");
        tx.record(t(0), 1);
        tx.record(t(12_000), 2);
        tx.record(t(24_000), 3);
        // Packet 2 lost on the ring.
        rx.record(t(10_740), 1);
        rx.record(t(34_900), 3);
        assert_eq!(
            tx.deltas_to(&rx),
            vec![Dur::from_us(10_740), Dur::from_us(10_900)]
        );
    }

    #[test]
    fn deltas_by_tag_pair_duplicates_in_order() {
        let mut tx = EdgeLog::new("tx");
        let mut rx = EdgeLog::new("rx");
        // Packet 5 retransmitted: two tx edges, two rx edges.
        tx.record(t(0), 5);
        tx.record(t(100), 5);
        rx.record(t(10), 5);
        rx.record(t(150), 5);
        assert_eq!(tx.deltas_to(&rx), vec![Dur::from_us(10), Dur::from_us(50)]);
    }

    #[test]
    fn positional_deltas() {
        let mut a = EdgeLog::new("irq");
        let mut b = EdgeLog::new("handler");
        a.record(t(0), 0);
        a.record(t(12_000), 0);
        a.record(t(24_000), 0);
        b.record(t(40), 0);
        b.record(t(12_480), 0);
        assert_eq!(
            a.deltas_positional(&b),
            vec![Dur::from_us(40), Dur::from_us(480)]
        );
    }

    #[test]
    fn deltas_drop_negative_pairs() {
        let mut a = EdgeLog::new("a");
        let mut b = EdgeLog::new("b");
        a.record(t(100), 1);
        b.record(t(50), 1);
        assert!(a.deltas_to(&b).is_empty());
        assert!(a.deltas_positional(&b).is_empty());
    }
}
