//! The scheduler / event bus: the "motherboard" pattern as reusable
//! infrastructure.
//!
//! Historically every testbed in `ctms-core` hand-wrote the same loop:
//! poll each component for its next deadline, advance whichever is due,
//! and route the emitted events between components with a cascade guard.
//! [`Harness`] owns that loop once:
//!
//! * components register into a [`NodeId`]-addressable registry,
//! * a central deadline scheduler (an indexed d-ary min-heap keyed by
//!   `(SimTime, NodeId)`, see [`crate::heap::IndexedHeap`]) picks the
//!   next instant and services due nodes in registration order — so runs
//!   remain bit-deterministic and exactly reproduce the fixed advance
//!   order of the old hand-rolled loops,
//! * a [`Router`] supplied by the caller turns each emitted event into
//!   commands for other nodes, pushed into a harness-owned [`CmdSink`];
//!   same-instant cascades are bounded by the built-in guard, which
//!   reports a typed [`CascadeError`] instead of tearing the simulation
//!   down.
//!
//! # The zero-allocation hot path
//!
//! The paper's whole argument is that throughput is won by deleting
//! per-packet CPU work from the data path (§2 removes two of four
//! copies; §4 keeps DMA off the system bus). The scheduler holds itself
//! to the same discipline: in steady state, servicing an event performs
//! **zero heap allocations**.
//!
//! * The indexed heap keeps exactly one entry per node and supports
//!   update-key in place, so rescheduling never pushes garbage entries
//!   and `peek`/`pop` never discard stale ones.
//! * Routing pushes into a reusable [`CmdSink`]; the wave, due-list,
//!   touched-list, and per-node output buffers all live in the harness
//!   and retain their capacity across steps.
//!
//! `cargo test -p ctms-sim --features alloc-count --test zero_alloc`
//! proves the claim with a counting global allocator, and the
//! `ctms-bench` `perf` binary measures the resulting events/sec against
//! [`SchedMode::LazyBaseline`] — a faithful emulation of the pre-change
//! scheduler (lazy-invalidation `BinaryHeap`, a freshly allocated
//! command `Vec` per routed event, fresh wave buffers per step) kept
//! only so the speedup is machine-checked rather than asserted.

//! The harness also owns the run's [`telemetry::Registry`]: every node
//! (and the router) registers its statistics under a dotted namespace
//! on demand via [`Harness::collect_telemetry`], phases can be frozen
//! with [`Harness::snapshot_phase`], and a tripped cascade guard leaves
//! a diagnosable trail — an edge-signal event plus a final
//! `cascade-failure` snapshot — instead of only an error value.

use crate::engine::Component;
use crate::heap::IndexedHeap;
use crate::persist::{ChunkedReader, ChunkedWriter, Dec, Enc, Persist, PersistError};
use crate::telemetry::Registry;
use crate::time::SimTime;
use std::collections::BinaryHeap;

/// Registry handle of a node in a [`Harness`]; assigned densely in
/// registration order, which is also the service order on deadline ties.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node {}", self.0)
    }
}

/// A caller-owned command buffer the [`Router`] pushes into.
///
/// The harness passes the same sink (drained, capacity retained) to
/// every `route` call, so routing a steady-state event allocates
/// nothing. Commands are delivered in push order.
#[derive(Debug)]
pub struct CmdSink<Cmd> {
    buf: Vec<(NodeId, Cmd)>,
}

impl<Cmd> Default for CmdSink<Cmd> {
    fn default() -> Self {
        CmdSink::new()
    }
}

impl<Cmd> CmdSink<Cmd> {
    /// An empty sink.
    pub fn new() -> Self {
        CmdSink { buf: Vec::new() }
    }

    /// Queues `cmd` for delivery to `dst` (in push order).
    #[inline]
    pub fn push(&mut self, dst: NodeId, cmd: Cmd) {
        self.buf.push((dst, cmd));
    }

    /// Commands queued so far in this `route` call.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drops queued commands, retaining capacity — the same reuse
    /// contract as the harness's other scratch buffers.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Drains the queued `(dst, cmd)` pairs in push order, retaining
    /// capacity. Schedulers built on top of the harness machinery (the
    /// sharded engine) consume routed commands through this.
    pub fn drain(&mut self) -> std::vec::Drain<'_, (NodeId, Cmd)> {
        self.buf.drain(..)
    }
}

/// Turns events emitted by one node into commands for other nodes.
///
/// The router is the only place topology lives: the harness knows
/// nothing about what its nodes are. Routing runs inside the
/// same-instant cascade, so commands pushed into `sink` are delivered
/// (and their outputs routed) before simulated time moves. The router
/// may also absorb events (measurement taps, counters) by pushing no
/// commands for them.
pub trait Router<C: Component> {
    /// Routes one `event` emitted by `src` at `now`, pushing any
    /// resulting commands into `sink`. The sink is reused across calls —
    /// never assume it is freshly allocated, and (since [`Router::route_all`]
    /// shares one sink across a batch) never assume it is empty on entry.
    fn route(&mut self, now: SimTime, src: NodeId, event: C::Out, sink: &mut CmdSink<C::Cmd>);

    /// Routes a batch of events all emitted by `src` at `now`, draining
    /// `events` front to back. The harness batches consecutive same-source
    /// events from one cascade wave into a single call, so routers whose
    /// per-call overhead dominates (table lookups, telemetry taps) can hoist
    /// the per-source work out of the loop. The default simply forwards to
    /// [`Router::route`] per event; implementations must preserve exactly
    /// that command order so batching stays bit-identical.
    fn route_all(
        &mut self,
        now: SimTime,
        src: NodeId,
        events: &mut Vec<C::Out>,
        sink: &mut CmdSink<C::Cmd>,
    ) {
        for event in events.drain(..) {
            self.route(now, src, event, sink);
        }
    }

    /// Registers the router's own statistics (absorbed measurement
    /// traffic, wiring-level counters) into the telemetry tree. Called by
    /// [`Harness::collect_telemetry`] after every node has published.
    fn publish_telemetry(&self, reg: &mut Registry) {
        let _ = reg;
    }
}

/// Why optimistic execution had to give up rather than roll back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpeculationFault {
    /// A straggler arrived behind the oldest retained snapshot, so the
    /// shard cannot rewind far enough to honor it.
    RollbackPastOldestSnapshot,
    /// Released cross-shard mail arrived behind the receiver's
    /// *committed* clock — the certainty fixpoint admitted a miss.
    CausalityMiss,
}

impl std::fmt::Display for SpeculationFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpeculationFault::RollbackPastOldestSnapshot => {
                write!(f, "rollback past the oldest retained snapshot")
            }
            SpeculationFault::CausalityMiss => write!(f, "committed-mail causality miss"),
        }
    }
}

/// A scheduling failure that poisons the harness: a same-instant routing
/// cascade that never converged, a cross-shard emission from inside a
/// conservative window, or an optimistic-mode invariant violation. All
/// variants surface as typed errors (e.g. as a JSON error line from
/// `ctms-serve`) instead of tearing the process down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CascadeError {
    /// A same-instant routing cascade exceeded the configured step limit —
    /// some component keeps scheduling work at the current instant forever.
    Overflow {
        /// The instant at which the cascade never converged.
        at: SimTime,
        /// The node whose events were being routed when the limit tripped.
        node: NodeId,
        /// Cascade steps performed at `at` before giving up.
        steps: u32,
    },
    /// A node emitted a command for a node owned by another shard from
    /// inside a conservative window — a violation of the lookahead
    /// contract (cross-shard traffic must be emitted at sync instants).
    CrossShard {
        /// The instant of the offending emission.
        at: SimTime,
        /// The emitting node.
        src: NodeId,
        /// The cross-shard destination.
        dst: NodeId,
        /// Shard owning `src`.
        src_shard: u32,
        /// Shard owning `dst`.
        dst_shard: u32,
    },
    /// Optimistic execution hit an unrecoverable invariant violation.
    Speculation {
        /// The straggler / violation instant.
        at: SimTime,
        /// The shard that could not recover.
        shard: u32,
        /// What went wrong.
        kind: SpeculationFault,
    },
}

impl CascadeError {
    /// The classic cascade-guard overflow.
    pub fn overflow(at: SimTime, node: NodeId, steps: u32) -> Self {
        CascadeError::Overflow { at, node, steps }
    }

    /// The simulation instant at which the failure occurred.
    pub fn at(&self) -> SimTime {
        match *self {
            CascadeError::Overflow { at, .. }
            | CascadeError::CrossShard { at, .. }
            | CascadeError::Speculation { at, .. } => at,
        }
    }

    /// The node involved in the failure (the routed node for an
    /// overflow, the emitter for a cross-shard violation); speculation
    /// faults are per-shard and have no single node.
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            CascadeError::Overflow { node, .. } => Some(node),
            CascadeError::CrossShard { src, .. } => Some(src),
            CascadeError::Speculation { .. } => None,
        }
    }

    /// Cascade steps performed before giving up (0 for non-overflow
    /// failures, which are not step-bounded).
    pub fn steps(&self) -> u32 {
        match *self {
            CascadeError::Overflow { steps, .. } => steps,
            _ => 0,
        }
    }

    /// The one-line detail string recorded on the telemetry edge-signal
    /// event when this failure poisons a harness.
    pub fn event_detail(&self) -> String {
        match *self {
            CascadeError::Overflow { node, steps, .. } => {
                format!("{steps} steps routing events from {node}")
            }
            CascadeError::CrossShard {
                src,
                dst,
                src_shard,
                dst_shard,
                ..
            } => format!(
                "cross-shard emission {src} (shard {src_shard}) -> {dst} (shard {dst_shard})"
            ),
            CascadeError::Speculation { shard, kind, .. } => {
                format!("speculation fault on shard {shard}: {kind}")
            }
        }
    }
}

impl std::fmt::Display for CascadeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CascadeError::Overflow { at, node, steps } => write!(
                f,
                "cascade guard tripped: {steps} same-instant routing steps at {at} while routing events from {node}",
            ),
            CascadeError::CrossShard {
                at,
                src,
                dst,
                src_shard,
                dst_shard,
            } => write!(
                f,
                "sharded scheduler protocol violation: {src} (shard {src_shard}) emitted a \
                 cross-shard command for {dst} (shard {dst_shard}) at {at} inside a \
                 conservative window; cross-shard traffic must be emitted at sync instants",
            ),
            CascadeError::Speculation { at, shard, kind } => write!(
                f,
                "optimistic execution fault on shard {shard} at {at}: {kind}",
            ),
        }
    }
}

impl std::error::Error for CascadeError {}

/// Which scheduler implementation a [`Harness`] runs on.
///
/// Every production caller uses [`SchedMode::Indexed`] (the default).
/// [`SchedMode::LazyBaseline`] exists solely for the `ctms-bench` `perf`
/// binary: it emulates the pre-PR4 hot path — lazy-invalidation
/// `BinaryHeap` scheduling, a fresh command `Vec` per routed event, and
/// fresh wave/due buffers per step — so the speedup of the indexed
/// zero-allocation path is measured against a live implementation
/// instead of a number in a commit message. Both modes produce
/// bit-identical simulation results (the `perf` binary asserts it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedMode {
    /// Indexed d-ary heap + reused buffers (the production path).
    #[default]
    Indexed,
    /// Pre-change emulation for perf comparison only.
    LazyBaseline,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SchedEntry {
    at: SimTime,
    node: usize,
    seq: u64,
}

impl PartialOrd for SchedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SchedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first. Ties at one
        // instant are served in NodeId order (= registration order), and
        // duplicate entries for one node fall back to push order (FIFO).
        (other.at, other.node, other.seq).cmp(&(self.at, self.node, self.seq))
    }
}

/// The scheduler state: indexed heap (production) or the lazy baseline.
#[derive(Debug)]
enum Sched {
    Indexed(IndexedHeap),
    Lazy {
        heap: BinaryHeap<SchedEntry>,
        seq: u64,
    },
}

/// The generic scheduler/event-bus. See the module docs.
pub struct Harness<C: Component, R: Router<C>> {
    nodes: Vec<C>,
    labels: Vec<String>,
    router: R,
    now: SimTime,
    sched: Sched,
    limit: u32,
    failed: Option<CascadeError>,
    dirty: Vec<usize>,
    telemetry: Registry,
    /// Component activations (advances + delivered commands) so far.
    events: u64,
    // Reusable hot-path buffers: drained every step, capacity retained,
    // so steady-state stepping performs no heap allocation.
    due: Vec<usize>,
    touched: Vec<usize>,
    wave: Vec<(NodeId, C::Out)>,
    next_wave: Vec<(NodeId, C::Out)>,
    out_buf: Vec<C::Out>,
    cmds: CmdSink<C::Cmd>,
    batch: Vec<C::Out>,
    /// Per-node visit stamps for O(1) dedup in `reschedule_touched`
    /// (node k was visited iff `stamp[k] == epoch`).
    stamp: Vec<u64>,
    epoch: u64,
}

/// Default same-instant cascade step limit.
pub const DEFAULT_CASCADE_LIMIT: u32 = 100_000;

impl<C: Component, R: Router<C>> Harness<C, R> {
    /// Creates an empty harness around `router` with the given
    /// same-instant cascade step limit, on the production (indexed,
    /// zero-allocation) scheduler.
    pub fn new(router: R, cascade_limit: u32) -> Self {
        Harness::with_mode(router, cascade_limit, SchedMode::Indexed)
    }

    /// Like [`Harness::new`], selecting the scheduler implementation.
    /// Only the `perf` harness should pass [`SchedMode::LazyBaseline`].
    pub fn with_mode(router: R, cascade_limit: u32, mode: SchedMode) -> Self {
        assert!(cascade_limit > 0, "cascade limit must be positive");
        Harness {
            nodes: Vec::new(),
            labels: Vec::new(),
            router,
            now: SimTime::ZERO,
            sched: match mode {
                SchedMode::Indexed => Sched::Indexed(IndexedHeap::new()),
                SchedMode::LazyBaseline => Sched::Lazy {
                    heap: BinaryHeap::new(),
                    seq: 0,
                },
            },
            limit: cascade_limit,
            failed: None,
            dirty: Vec::new(),
            telemetry: Registry::new(),
            events: 0,
            due: Vec::new(),
            touched: Vec::new(),
            wave: Vec::new(),
            next_wave: Vec::new(),
            out_buf: Vec::new(),
            cmds: CmdSink::new(),
            batch: Vec::new(),
            stamp: Vec::new(),
            epoch: 0,
        }
    }

    /// The scheduler implementation this harness runs on.
    pub fn sched_mode(&self) -> SchedMode {
        match self.sched {
            Sched::Indexed(_) => SchedMode::Indexed,
            Sched::Lazy { .. } => SchedMode::LazyBaseline,
        }
    }

    /// Registers a node and schedules its current deadline. The node's
    /// telemetry namespace defaults to `node{k}`; use
    /// [`Harness::add_node_labeled`] to mount it elsewhere.
    pub fn add_node(&mut self, node: C) -> NodeId {
        let label = format!("node{}", self.nodes.len());
        self.add_node_labeled(node, label)
    }

    /// Registers a node under an explicit dotted telemetry namespace
    /// (e.g. `tokenring.ring0`, `unixkern.h1`).
    pub fn add_node_labeled(&mut self, node: C, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        self.labels.push(label.into());
        self.stamp.push(0);
        self.reschedule(id.0);
        id
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Component activations (deadline advances plus delivered commands)
    /// serviced so far — the numerator of the `perf` harness's
    /// events/sec figure. Not published as telemetry (the metric tree is
    /// pinned by golden digests); purely a scheduler-throughput counter.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Shared access to a node.
    pub fn node(&self, id: NodeId) -> &C {
        &self.nodes[id.0]
    }

    /// Mutable access to a node. The node is conservatively rescheduled
    /// before the next step, since the caller may change its deadline.
    pub fn node_mut(&mut self, id: NodeId) -> &mut C {
        self.dirty.push(id.0);
        &mut self.nodes[id.0]
    }

    /// Shared access to the router.
    pub fn router(&self) -> &R {
        &self.router
    }

    /// Mutable access to the router.
    pub fn router_mut(&mut self) -> &mut R {
        &mut self.router
    }

    /// The error that poisoned this harness, if a cascade overflowed.
    pub fn failure(&self) -> Option<CascadeError> {
        self.failed
    }

    /// The run's telemetry registry as last collected (events and phase
    /// snapshots accumulate live; metrics are rebuilt by
    /// [`Harness::collect_telemetry`]).
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Rebuilds the metric tree by pulling every node's instruments
    /// (each under its registration label), the router's, and the
    /// harness's own `sim.*` metrics, then returns the registry for
    /// further additions or serialization. Deterministic: nodes publish
    /// in registration order into a path-ordered tree.
    pub fn collect_telemetry(&mut self) -> &mut Registry {
        self.telemetry.clear_metrics();
        for (k, node) in self.nodes.iter().enumerate() {
            let mut scope = self.telemetry.scope(&self.labels[k]);
            node.publish_telemetry(&mut scope);
        }
        self.router.publish_telemetry(&mut self.telemetry);
        let mut sim = self.telemetry.scope("sim");
        sim.gauge("now_ns", self.now.as_ns() as i64);
        sim.counter("nodes", self.nodes.len() as u64);
        sim.counter("cascade.overflows", u64::from(self.failed.is_some()));
        &mut self.telemetry
    }

    /// Collects the current metric tree and freezes it as a named phase
    /// snapshot (serialized with the registry).
    pub fn snapshot_phase(&mut self, name: impl Into<String>) {
        self.collect_telemetry();
        self.telemetry.snapshot_phase(name);
    }

    /// Collects and serializes the registry as canonical JSON.
    pub fn telemetry_json(&mut self) -> String {
        self.collect_telemetry();
        self.telemetry.to_json()
    }

    /// Records the diagnosable trail of a cascade overflow: an
    /// edge-signal event at the failing instant plus a final
    /// `cascade-failure` phase snapshot of every metric. A blown run
    /// thus leaves the state the §5.2.1 operators would have examined,
    /// not just an error value.
    fn record_failure(&mut self, err: CascadeError) {
        self.telemetry
            .event(err.at(), "sim.cascade.overflow", err.event_detail());
        self.snapshot_phase("cascade-failure");
    }

    /// Delivers `cmd` to `id` at the current instant and routes the
    /// resulting cascade, exactly as if the command had been produced by
    /// the router mid-run.
    pub fn inject(&mut self, id: NodeId, cmd: C::Cmd) -> Result<(), CascadeError> {
        if let Some(e) = self.failed {
            return Err(e);
        }
        let now = self.now;
        debug_assert!(self.out_buf.is_empty() && self.wave.is_empty());
        self.events += 1;
        self.nodes[id.0].handle(now, cmd, &mut self.out_buf);
        while let Some(e) = self.out_buf.pop() {
            self.wave.push((id, e));
        }
        self.wave.reverse();
        self.touched.clear();
        self.touched.push(id.0);
        let result = self.cascade(now);
        self.reschedule_touched();
        result
    }

    /// Runs until no node has a deadline at or before `horizon`, then
    /// leaves the clock at `horizon`. Returns a [`CascadeError`] (and
    /// poisons the harness) if a same-instant cascade never converges;
    /// the simulation state up to the failing instant remains readable.
    pub fn try_run_until(&mut self, horizon: SimTime) -> Result<(), CascadeError> {
        if let Some(e) = self.failed {
            return Err(e);
        }
        self.flush_dirty();
        while let Some(t) = self.peek_deadline() {
            if t > horizon {
                break;
            }
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            if matches!(self.sched, Sched::Lazy { .. }) {
                // Baseline emulation: the pre-change loop allocated its
                // due/wave/output buffers afresh every step.
                self.due = Vec::new();
                self.touched = Vec::new();
                self.wave = Vec::new();
                self.out_buf = Vec::new();
            }
            self.pop_due(t);
            self.touched.clear();
            self.touched.extend_from_slice(&self.due);
            debug_assert!(self.wave.is_empty() && self.out_buf.is_empty());
            for i in 0..self.due.len() {
                let n = self.due[i];
                self.events += 1;
                self.nodes[n].advance(t, &mut self.out_buf);
                for e in self.out_buf.drain(..) {
                    self.wave.push((NodeId(n), e));
                }
            }
            let result = self.cascade(t);
            self.reschedule_touched();
            result?;
        }
        if self.now < horizon {
            self.now = horizon;
        }
        Ok(())
    }

    /// Like [`Harness::try_run_until`] but panics on cascade overflow
    /// (for callers that treat it as the bug it is).
    pub fn run_until(&mut self, horizon: SimTime) {
        if let Err(e) = self.try_run_until(horizon) {
            panic!("{e}");
        }
    }

    /// Appends the harness's dynamic state — clock, event counter, every
    /// node in registration order, and the telemetry event/phase history
    /// — to `enc`. The scheduler heap is *not* encoded: it is a pure
    /// function of node deadlines and is rebuilt on restore. The router
    /// is also not encoded; the topology layer that owns its concrete
    /// type persists it alongside this call.
    ///
    /// Must be called at a quiescent instant (after `try_run_until`
    /// returned), when every scratch buffer is drained.
    pub fn persist_state(&self, enc: &mut Enc)
    where
        C: Persist,
    {
        debug_assert!(self.wave.is_empty() && self.out_buf.is_empty());
        enc.time(self.now);
        enc.u64(self.events);
        enc.seq_len(self.nodes.len());
        for node in &self.nodes {
            node.persist(enc);
        }
        self.telemetry.persist(enc);
    }

    /// Applies state persisted by [`Harness::persist_state`] onto this
    /// freshly rebuilt harness (same topology, same registration order).
    /// Every node is conservatively marked dirty so the scheduler re-keys
    /// it from its restored deadline before the next step.
    pub fn restore_state(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError>
    where
        C: Persist,
    {
        if let Some(e) = self.failed {
            return Err(PersistError::mismatch(format!(
                "cannot restore into a poisoned harness: {e}"
            )));
        }
        let now = dec.time()?;
        let events = dec.u64()?;
        let n = dec.seq_len()?;
        if n != self.nodes.len() {
            return Err(PersistError::mismatch(format!(
                "checkpoint has {n} nodes, rebuilt harness has {}",
                self.nodes.len()
            )));
        }
        for i in 0..self.nodes.len() {
            self.nodes[i].restore(dec)?;
            self.dirty.push(i);
        }
        self.telemetry.restore(dec)?;
        self.now = now;
        self.events = events;
        Ok(())
    }

    /// [`Harness::persist_state`] through a bounded chunk buffer: the
    /// identical bytes, streamed node by node so the whole snapshot is
    /// never materialized. Framing contract (relied on by
    /// `restore_state_chunked`): the prefix (clock, event counter, node
    /// count — plus whatever header the caller already buffered) ends a
    /// chunk; nodes then pack greedily, each chunk holding whole nodes;
    /// the telemetry block is flushed as its own chunk.
    pub fn persist_state_chunked(&self, w: &mut ChunkedWriter<'_>) -> Result<(), PersistError>
    where
        C: Persist,
    {
        debug_assert!(self.wave.is_empty() && self.out_buf.is_empty());
        let enc = w.enc();
        enc.time(self.now);
        enc.u64(self.events);
        enc.seq_len(self.nodes.len());
        w.flush_chunk()?;
        for node in &self.nodes {
            node.persist(w.enc());
            w.unit()?;
        }
        w.flush_chunk()?;
        self.telemetry.persist(w.enc());
        w.flush_chunk()?;
        Ok(())
    }

    /// Applies a stream written by [`Harness::persist_state_chunked`].
    /// `prefix` is the tail of the first chunk, positioned after the
    /// caller's header at the clock field; node and telemetry chunks
    /// are pulled from `r` through the scratch buffer `buf`.
    pub fn restore_state_chunked(
        &mut self,
        prefix: &mut Dec<'_>,
        r: &mut ChunkedReader<'_>,
        buf: &mut Vec<u8>,
    ) -> Result<(), PersistError>
    where
        C: Persist,
    {
        if let Some(e) = self.failed {
            return Err(PersistError::mismatch(format!(
                "cannot restore into a poisoned harness: {e}"
            )));
        }
        let now = prefix.time()?;
        let events = prefix.u64()?;
        // A bare u32, not `seq_len`: the node payloads live in later
        // chunks, so the remaining-bytes bound would misfire.
        let n = prefix.u32()? as usize;
        if n != self.nodes.len() {
            return Err(PersistError::mismatch(format!(
                "checkpoint has {n} nodes, rebuilt harness has {}",
                self.nodes.len()
            )));
        }
        if prefix.remaining() != 0 {
            return Err(PersistError::mismatch(
                "streamed checkpoint prefix chunk does not end at the node-count field",
            ));
        }
        let mut i = 0;
        while i < n {
            if !r.next_chunk_into(buf)? {
                return Err(PersistError::UnexpectedEof);
            }
            let mut dec = Dec::new(buf);
            while i < n && dec.remaining() > 0 {
                self.nodes[i].restore(&mut dec)?;
                self.dirty.push(i);
                i += 1;
            }
            // A chunk boundary inside a node would have failed the
            // restore above; leftover bytes after the last node mean
            // the telemetry block did not start its own chunk.
            dec.finish()?;
        }
        if !r.next_chunk_into(buf)? {
            return Err(PersistError::UnexpectedEof);
        }
        let mut dec = Dec::new(buf);
        self.telemetry.restore(&mut dec)?;
        dec.finish()?;
        self.now = now;
        self.events = events;
        Ok(())
    }

    /// Re-syncs the scheduler entry of every node recorded in `touched`,
    /// deduplicated by epoch stamp in O(len) — no sort, no allocation.
    /// First-touch order is fine: the indexed heap's update-key is
    /// order-independent, and the lazy baseline's ties break on
    /// `(at, node, seq)` with `node` before `seq`, so cross-node push
    /// order is unobservable.
    fn reschedule_touched(&mut self) {
        self.epoch += 1;
        let epoch = self.epoch;
        for i in 0..self.touched.len() {
            let n = self.touched[i];
            if self.stamp[n] != epoch {
                self.stamp[n] = epoch;
                self.reschedule(n);
            }
        }
        self.touched.clear();
    }

    /// Syncs the scheduler with the node's current deadline. On the
    /// indexed heap this is an in-place update-key; the lazy baseline
    /// pushes a fresh entry and lets validation discard the stale one.
    fn reschedule(&mut self, node: usize) {
        let at = self.nodes[node].next_deadline();
        match &mut self.sched {
            Sched::Indexed(h) => h.set(node, at),
            Sched::Lazy { heap, seq } => {
                if let Some(at) = at {
                    *seq += 1;
                    heap.push(SchedEntry {
                        at,
                        node,
                        seq: *seq,
                    });
                }
            }
        }
    }

    fn flush_dirty(&mut self) {
        while let Some(n) = self.dirty.pop() {
            self.reschedule(n);
        }
    }

    /// The earliest scheduled deadline. The indexed heap's root is
    /// always current; the lazy baseline discards stale entries (nodes
    /// whose deadline moved since the entry was pushed) on the way.
    fn peek_deadline(&mut self) -> Option<SimTime> {
        match &mut self.sched {
            Sched::Indexed(h) => {
                let (at, node) = h.peek()?;
                debug_assert_eq!(
                    self.nodes[node].next_deadline(),
                    Some(at),
                    "indexed heap out of sync with node {node}"
                );
                Some(at)
            }
            Sched::Lazy { heap, .. } => {
                while let Some(top) = heap.peek() {
                    if self.nodes[top.node].next_deadline() == Some(top.at) {
                        return Some(top.at);
                    }
                    heap.pop();
                }
                None
            }
        }
    }

    /// Fills `self.due` with every node scheduled at exactly `t`,
    /// deduplicated, in NodeId order (both heaps yield ties in that
    /// order by construction).
    fn pop_due(&mut self, t: SimTime) {
        self.due.clear();
        match &mut self.sched {
            Sched::Indexed(h) => {
                while let Some((at, node)) = h.peek() {
                    if at > t {
                        break;
                    }
                    h.pop();
                    self.due.push(node);
                }
            }
            Sched::Lazy { heap, .. } => {
                while let Some(top) = heap.peek() {
                    if top.at > t {
                        break;
                    }
                    let entry = heap.pop().expect("peeked entry");
                    if self.nodes[entry.node].next_deadline() != Some(entry.at) {
                        continue; // stale
                    }
                    if self.due.last() != Some(&entry.node) {
                        self.due.push(entry.node);
                    }
                }
            }
        }
    }

    /// Routes `self.wave` breadth-first at `now` until it drains,
    /// recording every commanded node in `self.touched`. Each iteration
    /// of the outer loop is one guard step, matching the wave accounting
    /// of the old per-testbed loops.
    fn cascade(&mut self, now: SimTime) -> Result<(), CascadeError> {
        let baseline = matches!(self.sched, Sched::Lazy { .. });
        let mut steps = 0u32;
        while !self.wave.is_empty() {
            steps += 1;
            if steps > self.limit {
                let err = CascadeError::overflow(now, self.wave[0].0, steps);
                self.failed = Some(err);
                self.wave.clear();
                self.next_wave.clear();
                self.cmds.clear();
                self.record_failure(err);
                return Err(err);
            }
            if baseline {
                // Baseline emulation: one fresh wave buffer per step,
                // the pre-change router returned a freshly allocated Vec
                // per routed event, and every event entered the router
                // individually.
                self.next_wave = Vec::new();
                for (src, event) in self.wave.drain(..) {
                    self.cmds = CmdSink::new();
                    self.cmds.buf.reserve(1);
                    self.router.route(now, src, event, &mut self.cmds);
                    for (dst, cmd) in self.cmds.buf.drain(..) {
                        self.events += 1;
                        self.nodes[dst.0].handle(now, cmd, &mut self.out_buf);
                        self.touched.push(dst.0);
                        for e in self.out_buf.drain(..) {
                            self.next_wave.push((dst, e));
                        }
                    }
                }
            } else {
                // Production path: drain the wave in runs of consecutive
                // same-source events, entering the router once per run.
                // Routing order and delivery order are exactly the
                // per-event loop's (the router never reads node state and
                // commands drain in push order), so batching is
                // bit-identical — only cheaper.
                let mut wave = std::mem::take(&mut self.wave);
                let mut iter = wave.drain(..).peekable();
                while let Some((src, event)) = iter.next() {
                    debug_assert!(self.cmds.is_empty());
                    match iter.peek() {
                        Some((s, _)) if *s == src => {
                            debug_assert!(self.batch.is_empty());
                            self.batch.push(event);
                            while let Some((s, _)) = iter.peek() {
                                if *s != src {
                                    break;
                                }
                                let (_, e) = iter.next().expect("peeked entry");
                                self.batch.push(e);
                            }
                            self.router
                                .route_all(now, src, &mut self.batch, &mut self.cmds);
                            self.batch.clear();
                        }
                        // Singleton run — the common case on sparse
                        // workloads — skips the batch buffer entirely.
                        _ => self.router.route(now, src, event, &mut self.cmds),
                    }
                    for (dst, cmd) in self.cmds.buf.drain(..) {
                        self.events += 1;
                        self.nodes[dst.0].handle(now, cmd, &mut self.out_buf);
                        self.touched.push(dst.0);
                        for e in self.out_buf.drain(..) {
                            self.next_wave.push((dst, e));
                        }
                    }
                }
                drop(iter);
                self.wave = wave;
            }
            std::mem::swap(&mut self.wave, &mut self.next_wave);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    /// A ticker that fires at a fixed period, logging (time, id) into a
    /// shared order via its emitted events; commands restart it.
    struct Ticker {
        id: u32,
        period: Dur,
        next: Option<SimTime>,
        remaining: u32,
    }

    impl Component for Ticker {
        type Cmd = u32;
        type Out = u32;
        fn next_deadline(&self) -> Option<SimTime> {
            self.next
        }
        fn advance(&mut self, now: SimTime, sink: &mut Vec<u32>) {
            if Some(now) == self.next {
                self.remaining -= 1;
                sink.push(self.id);
                self.next = if self.remaining > 0 {
                    Some(now + self.period)
                } else {
                    None
                };
            }
        }
        fn handle(&mut self, now: SimTime, extra: u32, _sink: &mut Vec<u32>) {
            self.remaining += extra;
            if self.next.is_none() {
                self.next = Some(now + self.period);
            }
        }
    }

    /// Absorbs everything, recording `(time, source)` service order.
    struct Recorder {
        seen: Vec<(SimTime, NodeId)>,
    }

    impl Router<Ticker> for Recorder {
        fn route(&mut self, now: SimTime, src: NodeId, _event: u32, _sink: &mut CmdSink<u32>) {
            self.seen.push((now, src));
        }
    }

    fn ticker(id: u32, period_ms: u64, fires: u32) -> Ticker {
        Ticker {
            id,
            period: Dur::from_ms(period_ms),
            next: Some(SimTime::from_ms(period_ms)),
            remaining: fires,
        }
    }

    #[test]
    fn nodes_sharing_a_deadline_fire_in_registration_order() {
        // Three tickers with identical periods land on every deadline
        // simultaneously; service order must be registration order at
        // every instant, regardless of heap internals — on both
        // scheduler implementations.
        for mode in [SchedMode::Indexed, SchedMode::LazyBaseline] {
            let mut h = Harness::with_mode(Recorder { seen: Vec::new() }, 100, mode);
            let c = h.add_node(ticker(2, 10, 4));
            let a = h.add_node(ticker(0, 10, 4));
            let b = h.add_node(ticker(1, 10, 4));
            h.run_until(SimTime::from_ms(100));
            let seen = &h.router().seen;
            assert_eq!(seen.len(), 12);
            for (k, chunk) in seen.chunks(3).enumerate() {
                let t = SimTime::from_ms(10 * (k as u64 + 1));
                assert_eq!(chunk, [(t, c), (t, a), (t, b)], "instant {t} mode {mode:?}");
            }
        }
    }

    #[test]
    fn scheduler_modes_produce_identical_service_orders() {
        // Mixed periods with plenty of ties and reschedules: the
        // baseline emulation and the indexed production path must agree
        // on every (time, node) pair — bit-determinism across modes is
        // what lets `perf` compare their wall clocks meaningfully.
        let run = |mode: SchedMode| {
            let mut h = Harness::with_mode(Recorder { seen: Vec::new() }, 100, mode);
            for (id, period, fires) in [(0, 7, 9), (1, 5, 12), (2, 35, 3), (3, 7, 4)] {
                h.add_node(ticker(id, period, fires));
            }
            h.run_until(SimTime::from_ms(200));
            (h.router().seen.clone(), h.events())
        };
        let (indexed, ev_i) = run(SchedMode::Indexed);
        let (lazy, ev_l) = run(SchedMode::LazyBaseline);
        assert_eq!(indexed, lazy);
        assert_eq!(ev_i, ev_l);
        assert!(ev_i >= 28, "{ev_i}");
    }

    #[test]
    fn rescheduling_keeps_single_node_fifo() {
        let mut h = Harness::new(Recorder { seen: Vec::new() }, 100);
        let a = h.add_node(ticker(0, 7, 3));
        h.run_until(SimTime::from_secs(1));
        assert_eq!(
            h.router().seen,
            vec![
                (SimTime::from_ms(7), a),
                (SimTime::from_ms(14), a),
                (SimTime::from_ms(21), a)
            ]
        );
        assert_eq!(h.now(), SimTime::from_secs(1));
    }

    #[test]
    fn inject_restarts_an_idle_node() {
        let mut h = Harness::new(Recorder { seen: Vec::new() }, 100);
        let a = h.add_node(ticker(0, 5, 1));
        h.run_until(SimTime::from_ms(100));
        assert_eq!(h.router().seen.len(), 1);
        h.inject(a, 2).unwrap();
        h.run_until(SimTime::from_ms(200));
        assert_eq!(h.router().seen.len(), 3);
        assert_eq!(h.router().seen[2].0, SimTime::from_ms(110));
    }

    #[test]
    fn node_mut_reschedules_external_changes() {
        let mut h = Harness::new(Recorder { seen: Vec::new() }, 100);
        let a = h.add_node(ticker(0, 5, 1));
        // One fire at 5 ms, then the node goes idle (no deadline).
        h.run_until(SimTime::from_ms(20));
        let before = h.router().seen.len();
        assert_eq!(before, 1);
        h.node_mut(a).remaining = 2;
        h.node_mut(a).next = Some(SimTime::from_ms(25));
        h.run_until(SimTime::from_ms(40));
        assert_eq!(h.router().seen.len(), before + 2);
    }

    #[test]
    fn node_mut_update_key_moves_deadlines_both_ways() {
        // The indexed heap's update-key after node_mut: pull a deadline
        // earlier, then push another one later, and check the service
        // times follow the *current* deadlines, not the originally
        // scheduled ones.
        let mut h = Harness::new(Recorder { seen: Vec::new() }, 100);
        let a = h.add_node(ticker(0, 50, 2));
        let b = h.add_node(ticker(1, 60, 2));
        // Before anything fires: a jumps earlier, b is postponed.
        h.node_mut(a).next = Some(SimTime::from_ms(10));
        h.node_mut(b).next = Some(SimTime::from_ms(90));
        h.run_until(SimTime::from_ms(200));
        let seen = &h.router().seen;
        assert_eq!(
            seen,
            &vec![
                (SimTime::from_ms(10), a),
                (SimTime::from_ms(60), a),
                (SimTime::from_ms(90), b),
                (SimTime::from_ms(150), b),
            ]
        );
    }

    /// A pathological router: echoes every event straight back as a
    /// command, and the component re-emits on handle — a same-instant
    /// livelock the guard must catch.
    struct Echo;
    struct Loop {
        armed: bool,
    }

    impl Component for Loop {
        type Cmd = u32;
        type Out = u32;
        fn next_deadline(&self) -> Option<SimTime> {
            self.armed.then(|| SimTime::from_ms(1))
        }
        fn advance(&mut self, _now: SimTime, sink: &mut Vec<u32>) {
            if self.armed {
                self.armed = false;
                sink.push(0);
            }
        }
        fn handle(&mut self, _now: SimTime, v: u32, sink: &mut Vec<u32>) {
            sink.push(v + 1);
        }
    }

    impl Router<Loop> for Echo {
        fn route(&mut self, _now: SimTime, src: NodeId, event: u32, sink: &mut CmdSink<u32>) {
            sink.push(src, event);
        }
    }

    #[test]
    fn cascade_overflow_is_a_typed_error_and_poisons() {
        let mut h = Harness::new(Echo, 50);
        let n = h.add_node(Loop { armed: true });
        let err = h.try_run_until(SimTime::from_secs(1)).unwrap_err();
        assert_eq!(err.node(), Some(n));
        assert_eq!(err.at(), SimTime::from_ms(1));
        assert_eq!(err.steps(), 51);
        assert_eq!(h.failure(), Some(err));
        // Poisoned: further runs report the same failure.
        assert_eq!(h.try_run_until(SimTime::from_secs(2)), Err(err));
        let msg = err.to_string();
        assert!(msg.contains("node 0") && msg.contains("51"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "cascade guard tripped")]
    fn run_until_panics_on_overflow() {
        let mut h = Harness::new(Echo, 10);
        h.add_node(Loop { armed: true });
        h.run_until(SimTime::from_secs(1));
    }

    /// A ticker variant that publishes its fire count.
    impl crate::telemetry::Instrument for Ticker {
        fn publish(&self, scope: &mut crate::telemetry::Scope<'_>) {
            scope.counter("remaining", u64::from(self.remaining));
            scope.counter("period_ns", self.period.as_ns());
        }
    }

    struct Published(Ticker);
    impl Component for Published {
        type Cmd = u32;
        type Out = u32;
        fn next_deadline(&self) -> Option<SimTime> {
            self.0.next_deadline()
        }
        fn advance(&mut self, now: SimTime, sink: &mut Vec<u32>) {
            self.0.advance(now, sink);
        }
        fn handle(&mut self, now: SimTime, extra: u32, sink: &mut Vec<u32>) {
            self.0.handle(now, extra, sink);
        }
        fn publish_telemetry(&self, scope: &mut crate::telemetry::Scope<'_>) {
            use crate::telemetry::Instrument as _;
            self.0.publish(scope);
        }
    }

    impl Router<Published> for Recorder {
        fn route(&mut self, now: SimTime, src: NodeId, _event: u32, _sink: &mut CmdSink<u32>) {
            self.seen.push((now, src));
        }
        fn publish_telemetry(&self, reg: &mut crate::telemetry::Registry) {
            reg.counter("router.routed", self.seen.len() as u64);
        }
    }

    #[test]
    fn collect_telemetry_mounts_nodes_under_labels() {
        let mut h = Harness::new(Recorder { seen: Vec::new() }, 100);
        h.add_node_labeled(Published(ticker(0, 10, 2)), "tick.a");
        h.add_node(Published(ticker(1, 10, 2))); // default label node1
        h.run_until(SimTime::from_ms(100));
        let reg = h.collect_telemetry();
        assert_eq!(reg.counter_value("tick.a.remaining"), Some(0));
        assert_eq!(reg.counter_value("node1.period_ns"), Some(10_000_000));
        assert_eq!(reg.counter_value("router.routed"), Some(4));
        assert_eq!(reg.counter_value("sim.nodes"), Some(2));
        assert_eq!(reg.counter_value("sim.cascade.overflows"), Some(0));
        // Re-collection is idempotent on a quiescent harness.
        let a = h.telemetry_json();
        let b = h.telemetry_json();
        assert_eq!(a, b);
    }

    #[test]
    fn phase_snapshots_capture_per_phase_state() {
        let mut h = Harness::new(Recorder { seen: Vec::new() }, 100);
        h.add_node_labeled(Published(ticker(0, 10, 4)), "t");
        h.run_until(SimTime::from_ms(20));
        h.snapshot_phase("warmup");
        h.run_until(SimTime::from_ms(100));
        h.collect_telemetry();
        let reg = h.telemetry();
        use crate::telemetry::Value;
        assert_eq!(
            reg.phase("warmup")
                .and_then(|m| match m.get("t.remaining") {
                    Some(Value::Counter(c)) => Some(*c),
                    _ => None,
                }),
            Some(2)
        );
        assert_eq!(reg.counter_value("t.remaining"), Some(0));
    }

    #[test]
    fn cascade_overflow_leaves_a_telemetry_trail() {
        let mut h = Harness::new(Echo, 50);
        let n = h.add_node(Loop { armed: true });
        let err = h.try_run_until(SimTime::from_secs(1)).unwrap_err();
        let reg = h.telemetry();
        // The edge-signal event names the failing instant and node.
        assert_eq!(reg.events().len(), 1);
        assert_eq!(reg.events()[0].at, err.at());
        assert_eq!(reg.events()[0].path, "sim.cascade.overflow");
        assert!(reg.events()[0].detail.contains(&format!("{n}")));
        // A final snapshot froze the metric tree at the failure.
        let snap = reg.phase("cascade-failure").expect("final snapshot");
        assert!(matches!(
            snap.get("sim.cascade.overflows"),
            Some(crate::telemetry::Value::Counter(1))
        ));
        // The trail also serializes.
        assert!(h.telemetry_json().contains("cascade-failure"));
    }
}
