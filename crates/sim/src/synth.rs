//! Synthetic allocation-free scheduler workloads.
//!
//! The `ctms-bench` `perf` binary measures the real case-A/case-B
//! testbeds, but proving the *scheduler's* steady state allocation-free
//! needs a workload whose components provably never allocate themselves
//! — otherwise an allocation in a component would be indistinguishable
//! from one in the harness. [`build_ring`] wires `n` periodic tickers
//! into a command ring: every fire is routed as a command to the next
//! node, which re-emits with a decremented hop budget, exercising the
//! full hot path (deadline pop, advance, route, handle, same-instant
//! cascade, reschedule/update-key) with nothing but `u64` payloads.
//!
//! Used by `tests/zero_alloc.rs` (under `--features alloc-count`) and
//! available to any harness micro-benchmark.

use crate::bus::{CmdSink, Harness, NodeId, Router, SchedMode, DEFAULT_CASCADE_LIMIT};
use crate::engine::Component;
use crate::time::{Dur, SimTime};

/// A periodic ticker that emits its fire count and forwards commands
/// while their hop budget lasts. Contains no heap-allocating state.
pub struct SynthNode {
    period: Dur,
    next: SimTime,
    fired: u64,
    handled: u64,
}

impl SynthNode {
    /// Fires this node has performed.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Commands this node has received.
    pub fn handled(&self) -> u64 {
        self.handled
    }
}

impl Component for SynthNode {
    type Cmd = u64;
    type Out = u64;

    fn next_deadline(&self) -> Option<SimTime> {
        Some(self.next)
    }

    fn advance(&mut self, now: SimTime, sink: &mut Vec<u64>) {
        if now == self.next {
            self.fired += 1;
            self.next = now + self.period;
            sink.push(self.fired);
        }
    }

    fn handle(&mut self, _now: SimTime, hops: u64, sink: &mut Vec<u64>) {
        self.handled += 1;
        if hops > 0 {
            sink.push(hops);
        }
    }
}

/// Routes every event to the emitter's ring successor with one hop of
/// budget consumed, so each fire produces a bounded same-instant
/// cascade around the ring.
pub struct RingForward {
    nodes: usize,
    hops: u64,
    routed: u64,
}

impl RingForward {
    /// Events routed so far.
    pub fn routed(&self) -> u64 {
        self.routed
    }
}

impl Router<SynthNode> for RingForward {
    fn route(&mut self, _now: SimTime, src: NodeId, event: u64, sink: &mut CmdSink<u64>) {
        self.routed += 1;
        let budget = event.min(self.hops);
        if budget > 0 {
            let dst = NodeId((src.0 + 1) % self.nodes);
            sink.push(dst, budget - 1);
        }
    }
}

/// Builds an `n`-node command ring with staggered periods near
/// `base_period_ns` (staggering keeps the deadline heap busy with
/// update-keys rather than degenerate ties) and per-fire cascades of up
/// to `hops` hops.
pub fn build_ring(n: usize, base_period_ns: u64, hops: u64) -> Harness<SynthNode, RingForward> {
    build_ring_with_mode(n, base_period_ns, hops, SchedMode::Indexed)
}

/// [`build_ring`] with an explicit scheduler mode, so benchmarks can
/// put the identical workload under the indexed heap and the lazy
/// baseline and compare allocation profiles.
pub fn build_ring_with_mode(
    n: usize,
    base_period_ns: u64,
    hops: u64,
    mode: SchedMode,
) -> Harness<SynthNode, RingForward> {
    assert!(n > 0, "ring needs at least one node");
    let mut h = Harness::with_mode(
        RingForward {
            nodes: n,
            hops,
            routed: 0,
        },
        DEFAULT_CASCADE_LIMIT,
        mode,
    );
    for k in 0..n {
        let period = Dur::from_ns(base_period_ns + (k as u64 % 7) * 13);
        h.add_node(SynthNode {
            period,
            next: SimTime::from_ns(period.as_ns()),
            fired: 0,
            handled: 0,
        });
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_cascades_are_bounded_and_deterministic() {
        let mut h = build_ring(8, 1_000, 3);
        h.run_until(SimTime::from_ns(50_000));
        let total_fired: u64 = (0..8).map(|k| h.node(NodeId(k)).fired()).sum();
        let total_handled: u64 = (0..8).map(|k| h.node(NodeId(k)).handled()).sum();
        assert!(total_fired > 0);
        // Each fire spawns at most `hops` handles around the ring.
        assert!(total_handled <= total_fired * 3);
        assert!(h.router().routed() >= total_fired);
        assert_eq!(h.events(), total_fired + total_handled);

        // Re-running the identical workload is bit-deterministic.
        let mut h2 = build_ring(8, 1_000, 3);
        h2.run_until(SimTime::from_ns(50_000));
        assert_eq!(h2.events(), h.events());
        assert_eq!(h2.router().routed(), h.router().routed());
    }
}
