//! Synthetic allocation-free scheduler workloads.
//!
//! The `ctms-bench` `perf` binary measures the real case-A/case-B
//! testbeds, but proving the *scheduler's* steady state allocation-free
//! needs a workload whose components provably never allocate themselves
//! — otherwise an allocation in a component would be indistinguishable
//! from one in the harness. [`build_ring`] wires `n` periodic tickers
//! into a command ring: every fire is routed as a command to the next
//! node, which re-emits with a decremented hop budget, exercising the
//! full hot path (deadline pop, advance, route, handle, same-instant
//! cascade, reschedule/update-key) with nothing but `u64` payloads.
//!
//! Used by `tests/zero_alloc.rs` (under `--features alloc-count`) and
//! available to any harness micro-benchmark.

use crate::bus::{CmdSink, Harness, NodeId, Router, SchedMode, DEFAULT_CASCADE_LIMIT};
use crate::engine::Component;
use crate::persist::{Dec, Enc, Persist, PersistError};
use crate::shard::ShardedHarness;
use crate::time::{Dur, SimTime};

/// A periodic ticker that emits its fire count and forwards commands
/// while their hop budget lasts. Contains no heap-allocating state.
pub struct SynthNode {
    period: Dur,
    next: SimTime,
    fired: u64,
    handled: u64,
}

impl SynthNode {
    /// Fires this node has performed.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Commands this node has received.
    pub fn handled(&self) -> u64 {
        self.handled
    }
}

impl Component for SynthNode {
    type Cmd = u64;
    type Out = u64;

    fn next_deadline(&self) -> Option<SimTime> {
        Some(self.next)
    }

    fn advance(&mut self, now: SimTime, sink: &mut Vec<u64>) {
        if now == self.next {
            self.fired += 1;
            self.next = now + self.period;
            sink.push(self.fired);
        }
    }

    fn handle(&mut self, _now: SimTime, hops: u64, sink: &mut Vec<u64>) {
        self.handled += 1;
        if hops > 0 {
            sink.push(hops);
        }
    }
}

impl Persist for SynthNode {
    fn persist(&self, enc: &mut Enc) {
        enc.dur(self.period);
        enc.time(self.next);
        enc.u64(self.fired);
        enc.u64(self.handled);
    }
    fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError> {
        self.period = dec.dur()?;
        self.next = dec.time()?;
        self.fired = dec.u64()?;
        self.handled = dec.u64()?;
        Ok(())
    }
}

/// Routes every event to the emitter's ring successor with one hop of
/// budget consumed, so each fire produces a bounded same-instant
/// cascade around the ring.
pub struct RingForward {
    nodes: usize,
    hops: u64,
    routed: u64,
}

impl RingForward {
    /// Events routed so far.
    pub fn routed(&self) -> u64 {
        self.routed
    }
}

impl Router<SynthNode> for RingForward {
    fn route(&mut self, _now: SimTime, src: NodeId, event: u64, sink: &mut CmdSink<u64>) {
        self.routed += 1;
        let budget = event.min(self.hops);
        if budget > 0 {
            let dst = NodeId((src.0 + 1) % self.nodes);
            sink.push(dst, budget - 1);
        }
    }
}

/// Builds an `n`-node command ring with staggered periods near
/// `base_period_ns` (staggering keeps the deadline heap busy with
/// update-keys rather than degenerate ties) and per-fire cascades of up
/// to `hops` hops.
pub fn build_ring(n: usize, base_period_ns: u64, hops: u64) -> Harness<SynthNode, RingForward> {
    build_ring_with_mode(n, base_period_ns, hops, SchedMode::Indexed)
}

/// [`build_ring`] with an explicit scheduler mode, so benchmarks can
/// put the identical workload under the indexed heap and the lazy
/// baseline and compare allocation profiles.
pub fn build_ring_with_mode(
    n: usize,
    base_period_ns: u64,
    hops: u64,
    mode: SchedMode,
) -> Harness<SynthNode, RingForward> {
    assert!(n > 0, "ring needs at least one node");
    let mut h = Harness::with_mode(
        RingForward {
            nodes: n,
            hops,
            routed: 0,
        },
        DEFAULT_CASCADE_LIMIT,
        mode,
    );
    for k in 0..n {
        let period = Dur::from_ns(base_period_ns + (k as u64 % 7) * 13);
        h.add_node(SynthNode {
            period,
            next: SimTime::from_ns(period.as_ns()),
            fired: 0,
            handled: 0,
        });
    }
    h
}

/// Routing for the two-shard workload of [`build_sharded_ring`]: two
/// disjoint `n`-node command rings (one per shard, forwards never cross
/// the cut) plus one sync-class relay on shard 0 whose fires are mailed
/// to shard 1. Contains no heap-allocating state.
pub struct ShardForward {
    nodes_per_shard: usize,
    hops: u64,
    routed: u64,
}

impl ShardForward {
    /// Events routed so far (per shard router, when sharded).
    pub fn routed(&self) -> u64 {
        self.routed
    }
}

impl Persist for ShardForward {
    fn persist(&self, enc: &mut Enc) {
        enc.u64(self.routed);
    }
    fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError> {
        self.routed = dec.u64()?;
        Ok(())
    }
}

impl crate::shard::MergeTelemetry for ShardForward {
    fn publish_merged(parts: &[&Self], reg: &mut crate::telemetry::Registry) {
        reg.scope("synth")
            .counter("routed", parts.iter().map(|p| p.routed).sum());
    }
}

impl Router<SynthNode> for ShardForward {
    fn route(&mut self, _now: SimTime, src: NodeId, event: u64, sink: &mut CmdSink<u64>) {
        self.routed += 1;
        let n = self.nodes_per_shard;
        if src.0 == 2 * n {
            // The relay: every fire crosses the cut into shard 1 with a
            // spent hop budget, so the recipient counts it and stops —
            // the relay never reacts to input, which satisfies any
            // positive lookahead vacuously.
            sink.push(NodeId(n + (event as usize % n)), 0);
        } else {
            let budget = event.min(self.hops);
            if budget > 0 {
                let base = if src.0 < n { 0 } else { n };
                sink.push(NodeId(base + (src.0 - base + 1) % n), budget - 1);
            }
        }
    }
}

fn synth_nodes(n: usize, base_period_ns: u64, relay_period_ns: u64) -> Vec<SynthNode> {
    (0..2 * n + 1)
        .map(|k| {
            let period = if k == 2 * n {
                Dur::from_ns(relay_period_ns)
            } else {
                Dur::from_ns(base_period_ns + (k as u64 % 7) * 13)
            };
            SynthNode {
                period,
                next: SimTime::from_ns(period.as_ns()),
                fired: 0,
                handled: 0,
            }
        })
        .collect()
}

/// Builds the two-shard mirror of [`build_ring`] on the conservative
/// parallel harness: shard 0 holds ring nodes `0..n` plus the sync
/// relay (node `2n`), shard 1 holds ring nodes `n..2n`; the relay fires
/// every `relay_period_ns` and each fire is delivered cross-shard.
/// Exercises the full sharded hot path — window negotiation, outbox
/// flush, pending-mail delivery, per-shard stepping — with nothing but
/// `u64` payloads, so `tests/zero_alloc.rs` can pin the sharded
/// steady state at zero allocations too.
pub fn build_sharded_ring(
    n: usize,
    base_period_ns: u64,
    hops: u64,
    relay_period_ns: u64,
    lookahead_ns: u64,
) -> ShardedHarness<SynthNode, ShardForward> {
    assert!(n > 0, "ring needs at least one node");
    let routers = (0..2)
        .map(|_| ShardForward {
            nodes_per_shard: n,
            hops,
            routed: 0,
        })
        .collect();
    let mut h = ShardedHarness::new(routers, DEFAULT_CASCADE_LIMIT, Dur::from_ns(lookahead_ns));
    for (k, node) in synth_nodes(n, base_period_ns, relay_period_ns)
        .into_iter()
        .enumerate()
    {
        let (shard, sync) = if k == 2 * n {
            (0, true)
        } else {
            (k / n, false)
        };
        h.add_node_labeled(node, format!("synth.n{k}"), shard, sync);
    }
    h
}

/// The single-threaded reference for [`build_sharded_ring`]: the same
/// nodes, router rule and registration order on the ordinary
/// [`Harness`], for bit-identity checks.
pub fn build_sharded_ring_reference(
    n: usize,
    base_period_ns: u64,
    hops: u64,
    relay_period_ns: u64,
) -> Harness<SynthNode, ShardForward> {
    assert!(n > 0, "ring needs at least one node");
    let mut h = Harness::with_mode(
        ShardForward {
            nodes_per_shard: n,
            hops,
            routed: 0,
        },
        DEFAULT_CASCADE_LIMIT,
        SchedMode::Indexed,
    );
    for node in synth_nodes(n, base_period_ns, relay_period_ns) {
        h.add_node(node);
    }
    h
}

// ----------------------------------------------------------------------
// Enumerated straggler schedules for the optimistic engine.
//
// The graph workload arranges `cells` identical cells into one of the
// four testbed shapes (chain / tree / mesh / fddi); each cell holds a
// free-running ticker (never crosses the cut) and a sync-class relay
// whose fire times are *enumerated up front* so tests can aim
// stragglers at adversarial points: exactly on a receiving cell's
// snapshot-boundary event, in same-instant streaks across every shard
// at once, or as a tight ascending cascade that stragglers shard after
// shard. Relays never react to input, so any positive lookahead is
// vacuously satisfied and the conservative engine stays exact.
// ----------------------------------------------------------------------

/// Which adversarial point the relay schedules aim their stragglers at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StragglerCase {
    /// Fires land exactly on a receiving cell's own event instants, so
    /// a rollback must cut precisely at a snapshot taken at that time.
    SnapshotBoundary,
    /// Every relay fires a burst at the same instants, so speculation
    /// is in flight on every shard when the sync instants hit.
    SameInstantStreak,
    /// Tightly ascending fire times across cells: each shard's rollback
    /// re-sends mail that stragglers the next shard in turn.
    MultiShardCascade,
}

/// One cell member of the straggler graph: a periodic ticker or an
/// enumerated-schedule relay. Schedules and periods are construction
/// config; only the moving state is persisted.
pub enum GraphCellNode {
    Ticker {
        period: Dur,
        next: SimTime,
        fired: u64,
        handled: u64,
    },
    Relay {
        schedule: Vec<SimTime>,
        cursor: usize,
        burst: u32,
        fired: u64,
        handled: u64,
    },
}

impl Component for GraphCellNode {
    type Cmd = u64;
    type Out = u64;

    fn next_deadline(&self) -> Option<SimTime> {
        match self {
            GraphCellNode::Ticker { next, .. } => Some(*next),
            GraphCellNode::Relay {
                schedule, cursor, ..
            } => schedule.get(*cursor).copied(),
        }
    }

    fn advance(&mut self, now: SimTime, sink: &mut Vec<u64>) {
        match self {
            GraphCellNode::Ticker {
                period,
                next,
                fired,
                ..
            } => {
                if *next == now {
                    *fired += 1;
                    *next = now + *period;
                    sink.push(3);
                }
            }
            GraphCellNode::Relay {
                schedule,
                cursor,
                burst,
                fired,
                ..
            } => {
                while schedule.get(*cursor).is_some_and(|&s| s <= now) {
                    *cursor += 1;
                    *fired += 1;
                    for _ in 0..*burst {
                        sink.push(2);
                    }
                }
            }
        }
    }

    fn handle(&mut self, _now: SimTime, hops: u64, sink: &mut Vec<u64>) {
        match self {
            GraphCellNode::Ticker { handled, .. } => {
                *handled += 1;
                if hops > 0 {
                    sink.push(hops - 1);
                }
            }
            // Relays never react: lookahead is vacuous for them.
            GraphCellNode::Relay { handled, .. } => *handled += 1,
        }
    }

    fn publish_telemetry(&self, scope: &mut crate::telemetry::Scope<'_>) {
        match self {
            GraphCellNode::Ticker { fired, handled, .. }
            | GraphCellNode::Relay { fired, handled, .. } => {
                scope.counter("fired", *fired);
                scope.counter("handled", *handled);
            }
        }
    }
}

impl Persist for GraphCellNode {
    fn persist(&self, enc: &mut Enc) {
        match self {
            GraphCellNode::Ticker {
                next,
                fired,
                handled,
                ..
            } => {
                enc.u8(0);
                enc.time(*next);
                enc.u64(*fired);
                enc.u64(*handled);
            }
            GraphCellNode::Relay {
                cursor,
                fired,
                handled,
                ..
            } => {
                enc.u8(1);
                enc.u64(*cursor as u64);
                enc.u64(*fired);
                enc.u64(*handled);
            }
        }
    }

    fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError> {
        let tag = dec.u8()?;
        match (tag, &mut *self) {
            (
                0,
                GraphCellNode::Ticker {
                    next,
                    fired,
                    handled,
                    ..
                },
            ) => {
                *next = dec.time()?;
                *fired = dec.u64()?;
                *handled = dec.u64()?;
            }
            (
                1,
                GraphCellNode::Relay {
                    cursor,
                    fired,
                    handled,
                    ..
                },
            ) => {
                *cursor = dec.u64()? as usize;
                *fired = dec.u64()?;
                *handled = dec.u64()?;
            }
            (tag, _) => {
                return Err(PersistError::BadTag {
                    what: "GraphCellNode",
                    tag,
                })
            }
        }
        Ok(())
    }
}

/// Static fan-out routing over the cell graph: a ticker's emissions
/// cascade locally (routed back to itself with the hop budget spent
/// down), a relay's emissions go to every out-neighbor cell's ticker —
/// crossing the shard cut whenever the neighbor lives elsewhere.
pub struct GraphForward {
    out: Vec<Vec<NodeId>>,
    routed: u64,
}

impl Router<GraphCellNode> for GraphForward {
    fn route(&mut self, _now: SimTime, src: NodeId, event: u64, sink: &mut CmdSink<u64>) {
        self.routed += 1;
        for &dst in &self.out[src.0] {
            sink.push(dst, event);
        }
    }

    fn publish_telemetry(&self, reg: &mut crate::telemetry::Registry) {
        reg.counter("graph.routed", self.routed);
    }
}

impl Persist for GraphForward {
    fn persist(&self, enc: &mut Enc) {
        enc.u64(self.routed);
    }
    fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError> {
        self.routed = dec.u64()?;
        Ok(())
    }
}

impl crate::shard::MergeTelemetry for GraphForward {
    fn publish_merged(parts: &[&Self], reg: &mut crate::telemetry::Registry) {
        reg.counter("graph.routed", parts.iter().map(|p| p.routed).sum());
    }
}

/// Out-neighbor lists for the four testbed shapes over `cells` cells.
pub fn graph_shape(shape: &str, cells: usize) -> Vec<Vec<usize>> {
    assert!(cells >= 2, "graph needs at least two cells");
    (0..cells)
        .map(|c| match shape {
            "chain" => (c + 1 < cells).then_some(c + 1).into_iter().collect(),
            "tree" => [2 * c + 1, 2 * c + 2]
                .into_iter()
                .filter(|&d| d < cells)
                .collect(),
            "mesh" => vec![(c + 1) % cells, (c + 2) % cells],
            "fddi" => vec![(c + 1) % cells, (c + cells - 1) % cells],
            other => panic!("unknown graph shape {other:?}"),
        })
        .collect()
}

fn ticker_period(cell: usize) -> u64 {
    97 + 13 * cell as u64
}

/// The enumerated relay fire times (and burst width) for `cell` under
/// `case`. Times are chosen against [`ticker_period`] so the
/// snapshot-boundary case collides exactly with the succeeding cell's
/// own event instants while the other cases stay off them.
pub fn relay_schedule(case: StragglerCase, cell: usize, cells: usize) -> (Vec<SimTime>, u32) {
    let times: Vec<u64> = match case {
        StragglerCase::SnapshotBoundary => {
            let p = ticker_period((cell + 1) % cells);
            vec![8 * p, 8 * p + 500, 20_000 + 61 * cell as u64]
        }
        StragglerCase::SameInstantStreak => vec![1_000, 1_001, 1_002, 2_000, 5_000],
        StragglerCase::MultiShardCascade => {
            let base = 1_000 + 10 * cell as u64;
            vec![base, base + 2_000, base + 4_000]
        }
    };
    let burst = if case == StragglerCase::SameInstantStreak {
        3
    } else {
        1
    };
    (times.into_iter().map(SimTime::from_ns).collect(), burst)
}

fn graph_cell_nodes(case: StragglerCase, cells: usize) -> Vec<(GraphCellNode, String)> {
    let mut nodes = Vec::with_capacity(2 * cells);
    for c in 0..cells {
        let p = ticker_period(c);
        nodes.push((
            GraphCellNode::Ticker {
                period: Dur::from_ns(p),
                next: SimTime::from_ns(p),
                fired: 0,
                handled: 0,
            },
            format!("g.c{c}.t"),
        ));
        let (schedule, burst) = relay_schedule(case, c, cells);
        nodes.push((
            GraphCellNode::Relay {
                schedule,
                cursor: 0,
                burst,
                fired: 0,
                handled: 0,
            },
            format!("g.c{c}.r"),
        ));
    }
    nodes
}

fn graph_adjacency(shape: &str, cells: usize) -> Vec<Vec<NodeId>> {
    let neigh = graph_shape(shape, cells);
    let mut out = vec![Vec::new(); 2 * cells];
    for c in 0..cells {
        out[2 * c] = vec![NodeId(2 * c)]; // local ticker cascade
        out[2 * c + 1] = neigh[c].iter().map(|&d| NodeId(2 * d)).collect();
    }
    out
}

/// Builds the sharded straggler graph: cells are block-partitioned over
/// `shards` shards in index order, relays are sync-class, lookahead is
/// the minimal 1 ns (vacuous — relays never react), so every relay fire
/// that crosses a cut arrives behind a speculating shard's clock.
pub fn build_straggler_graph(
    shape: &str,
    cells: usize,
    shards: usize,
    case: StragglerCase,
) -> ShardedHarness<GraphCellNode, GraphForward> {
    assert!(shards >= 1 && shards <= cells);
    let out = graph_adjacency(shape, cells);
    let routers = (0..shards)
        .map(|_| GraphForward {
            out: out.clone(),
            routed: 0,
        })
        .collect();
    let mut h = ShardedHarness::new(routers, DEFAULT_CASCADE_LIMIT, Dur::from_ns(1));
    for (k, (node, label)) in graph_cell_nodes(case, cells).into_iter().enumerate() {
        let cell = k / 2;
        let shard = cell * shards / cells;
        let sync = k % 2 == 1;
        h.add_node_labeled(node, label, shard, sync);
    }
    h
}

/// The single-threaded reference for [`build_straggler_graph`]: same
/// nodes, labels, registration order and routing rule on the ordinary
/// [`Harness`], for golden-digest parity checks.
pub fn build_straggler_reference(
    shape: &str,
    cells: usize,
    case: StragglerCase,
) -> Harness<GraphCellNode, GraphForward> {
    let mut h = Harness::with_mode(
        GraphForward {
            out: graph_adjacency(shape, cells),
            routed: 0,
        },
        DEFAULT_CASCADE_LIMIT,
        SchedMode::Indexed,
    );
    for (node, label) in graph_cell_nodes(case, cells) {
        h.add_node_labeled(node, label);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_cascades_are_bounded_and_deterministic() {
        let mut h = build_ring(8, 1_000, 3);
        h.run_until(SimTime::from_ns(50_000));
        let total_fired: u64 = (0..8).map(|k| h.node(NodeId(k)).fired()).sum();
        let total_handled: u64 = (0..8).map(|k| h.node(NodeId(k)).handled()).sum();
        assert!(total_fired > 0);
        // Each fire spawns at most `hops` handles around the ring.
        assert!(total_handled <= total_fired * 3);
        assert!(h.router().routed() >= total_fired);
        assert_eq!(h.events(), total_fired + total_handled);

        // Re-running the identical workload is bit-deterministic.
        let mut h2 = build_ring(8, 1_000, 3);
        h2.run_until(SimTime::from_ns(50_000));
        assert_eq!(h2.events(), h.events());
        assert_eq!(h2.router().routed(), h.router().routed());
    }

    #[test]
    fn sharded_ring_matches_the_single_threaded_reference() {
        use crate::shard::WindowMode;
        let horizon = SimTime::from_ns(200_000);
        let mut single = build_sharded_ring_reference(8, 1_000, 3, 2_500);
        single.run_until(horizon);
        assert!(single.node(NodeId(16)).fired() > 0, "relay must fire");
        let relayed: u64 = (8..16).map(|k| single.node(NodeId(k)).handled()).sum();
        assert!(relayed > 0, "cross-shard mail must flow");

        for mode in [WindowMode::FixedLookahead, WindowMode::Adaptive] {
            for threads in [1, 2] {
                let mut sharded = build_sharded_ring(8, 1_000, 3, 2_500, 2_500);
                sharded.set_window_mode(mode);
                sharded.set_threads(threads);
                sharded.run_until(horizon);
                assert_eq!(sharded.events(), single.events(), "{mode:?}/{threads}");
                for k in 0..17 {
                    let (s, r) = (sharded.node(NodeId(k)), single.node(NodeId(k)));
                    assert_eq!(s.fired(), r.fired(), "{mode:?}/{threads} node {k}");
                    assert_eq!(s.handled(), r.handled(), "{mode:?}/{threads} node {k}");
                }
            }
        }

        // Optimistic: shard 1's tickers speculate past the relay's
        // cross-shard mail, so straggler rollbacks must fire — and the
        // committed results must still match the reference exactly.
        for threads in [1, 2] {
            let mut opt = build_sharded_ring(8, 1_000, 3, 2_500, 2_500);
            opt.set_exec_mode(crate::shard::ExecMode::Optimistic);
            opt.set_snapshot_cadence(8);
            opt.set_threads(threads);
            opt.run_until(horizon);
            assert_eq!(opt.events(), single.events(), "opt/{threads}");
            for k in 0..17 {
                let (s, r) = (opt.node(NodeId(k)), single.node(NodeId(k)));
                assert_eq!(s.fired(), r.fired(), "opt/{threads} node {k}");
                assert_eq!(s.handled(), r.handled(), "opt/{threads} node {k}");
            }
            let reg = opt.exec_telemetry();
            assert!(
                reg.counter_value("sched.rollbacks") > Some(0),
                "opt/{threads}: speculation must actually roll back"
            );
        }
    }

    #[test]
    fn straggler_schedules_roll_back_and_match_the_reference() {
        use crate::shard::{ExecMode, WindowMode};
        let horizon = SimTime::from_ns(30_000);
        let cells = 6;
        for shape in ["chain", "tree", "mesh", "fddi"] {
            for case in [
                StragglerCase::SnapshotBoundary,
                StragglerCase::SameInstantStreak,
                StragglerCase::MultiShardCascade,
            ] {
                let mut single = build_straggler_reference(shape, cells, case);
                single.run_until(horizon);
                let golden = single.telemetry_json();
                assert!(single.events() > 0);

                for shards in [1usize, 2, 4] {
                    // Conservative cross-check first: the straggler
                    // workload must already be exact under both window
                    // modes before the optimistic claim means anything.
                    for mode in [WindowMode::FixedLookahead, WindowMode::Adaptive] {
                        let mut cons = build_straggler_graph(shape, cells, shards, case);
                        cons.set_window_mode(mode);
                        cons.set_threads(2.min(shards));
                        cons.run_until(horizon);
                        assert_eq!(
                            cons.telemetry_json(),
                            golden,
                            "{shape}/{case:?}/{shards} {mode:?}"
                        );
                    }

                    // Optimistic under both conservative baselines: a
                    // short snapshot cadence and a speculation span
                    // covering the whole horizon, so every cross-cut
                    // relay fire is a straggler.
                    let mut rollbacks = 0;
                    for mode in [WindowMode::Adaptive, WindowMode::FixedLookahead] {
                        let mut opt = build_straggler_graph(shape, cells, shards, case);
                        opt.set_window_mode(mode);
                        opt.set_exec_mode(ExecMode::Optimistic);
                        opt.set_snapshot_cadence(4);
                        opt.set_speculation_span(Dur::from_ns(100_000));
                        opt.set_threads(2.min(shards));
                        opt.run_until(horizon);
                        assert_eq!(
                            opt.telemetry_json(),
                            golden,
                            "{shape}/{case:?}/{shards} opt {mode:?}"
                        );
                        assert_eq!(
                            opt.events(),
                            single.events(),
                            "{shape}/{case:?}/{shards} {mode:?}"
                        );
                        let reg = opt.exec_telemetry();
                        rollbacks += reg.counter_value("sched.rollbacks").unwrap_or(0);
                        if shards > 1 && reg.counter_value("sched.rollbacks") > Some(0) {
                            assert!(
                                reg.counter_value("sched.events_rolled_back") > Some(0),
                                "{shape}/{case:?}/{shards} {mode:?}: rollbacks must undo work"
                            );
                        }
                    }
                    if shards > 1 {
                        assert!(
                            rollbacks > 0,
                            "{shape}/{case:?}/{shards}: parity must not be vacuous"
                        );
                    }
                }
            }
        }
    }
}
