//! Synthetic allocation-free scheduler workloads.
//!
//! The `ctms-bench` `perf` binary measures the real case-A/case-B
//! testbeds, but proving the *scheduler's* steady state allocation-free
//! needs a workload whose components provably never allocate themselves
//! — otherwise an allocation in a component would be indistinguishable
//! from one in the harness. [`build_ring`] wires `n` periodic tickers
//! into a command ring: every fire is routed as a command to the next
//! node, which re-emits with a decremented hop budget, exercising the
//! full hot path (deadline pop, advance, route, handle, same-instant
//! cascade, reschedule/update-key) with nothing but `u64` payloads.
//!
//! Used by `tests/zero_alloc.rs` (under `--features alloc-count`) and
//! available to any harness micro-benchmark.

use crate::bus::{CmdSink, Harness, NodeId, Router, SchedMode, DEFAULT_CASCADE_LIMIT};
use crate::engine::Component;
use crate::shard::ShardedHarness;
use crate::time::{Dur, SimTime};

/// A periodic ticker that emits its fire count and forwards commands
/// while their hop budget lasts. Contains no heap-allocating state.
pub struct SynthNode {
    period: Dur,
    next: SimTime,
    fired: u64,
    handled: u64,
}

impl SynthNode {
    /// Fires this node has performed.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Commands this node has received.
    pub fn handled(&self) -> u64 {
        self.handled
    }
}

impl Component for SynthNode {
    type Cmd = u64;
    type Out = u64;

    fn next_deadline(&self) -> Option<SimTime> {
        Some(self.next)
    }

    fn advance(&mut self, now: SimTime, sink: &mut Vec<u64>) {
        if now == self.next {
            self.fired += 1;
            self.next = now + self.period;
            sink.push(self.fired);
        }
    }

    fn handle(&mut self, _now: SimTime, hops: u64, sink: &mut Vec<u64>) {
        self.handled += 1;
        if hops > 0 {
            sink.push(hops);
        }
    }
}

/// Routes every event to the emitter's ring successor with one hop of
/// budget consumed, so each fire produces a bounded same-instant
/// cascade around the ring.
pub struct RingForward {
    nodes: usize,
    hops: u64,
    routed: u64,
}

impl RingForward {
    /// Events routed so far.
    pub fn routed(&self) -> u64 {
        self.routed
    }
}

impl Router<SynthNode> for RingForward {
    fn route(&mut self, _now: SimTime, src: NodeId, event: u64, sink: &mut CmdSink<u64>) {
        self.routed += 1;
        let budget = event.min(self.hops);
        if budget > 0 {
            let dst = NodeId((src.0 + 1) % self.nodes);
            sink.push(dst, budget - 1);
        }
    }
}

/// Builds an `n`-node command ring with staggered periods near
/// `base_period_ns` (staggering keeps the deadline heap busy with
/// update-keys rather than degenerate ties) and per-fire cascades of up
/// to `hops` hops.
pub fn build_ring(n: usize, base_period_ns: u64, hops: u64) -> Harness<SynthNode, RingForward> {
    build_ring_with_mode(n, base_period_ns, hops, SchedMode::Indexed)
}

/// [`build_ring`] with an explicit scheduler mode, so benchmarks can
/// put the identical workload under the indexed heap and the lazy
/// baseline and compare allocation profiles.
pub fn build_ring_with_mode(
    n: usize,
    base_period_ns: u64,
    hops: u64,
    mode: SchedMode,
) -> Harness<SynthNode, RingForward> {
    assert!(n > 0, "ring needs at least one node");
    let mut h = Harness::with_mode(
        RingForward {
            nodes: n,
            hops,
            routed: 0,
        },
        DEFAULT_CASCADE_LIMIT,
        mode,
    );
    for k in 0..n {
        let period = Dur::from_ns(base_period_ns + (k as u64 % 7) * 13);
        h.add_node(SynthNode {
            period,
            next: SimTime::from_ns(period.as_ns()),
            fired: 0,
            handled: 0,
        });
    }
    h
}

/// Routing for the two-shard workload of [`build_sharded_ring`]: two
/// disjoint `n`-node command rings (one per shard, forwards never cross
/// the cut) plus one sync-class relay on shard 0 whose fires are mailed
/// to shard 1. Contains no heap-allocating state.
pub struct ShardForward {
    nodes_per_shard: usize,
    hops: u64,
    routed: u64,
}

impl ShardForward {
    /// Events routed so far (per shard router, when sharded).
    pub fn routed(&self) -> u64 {
        self.routed
    }
}

impl crate::shard::MergeTelemetry for ShardForward {
    fn publish_merged(parts: &[&Self], reg: &mut crate::telemetry::Registry) {
        reg.scope("synth")
            .counter("routed", parts.iter().map(|p| p.routed).sum());
    }
}

impl Router<SynthNode> for ShardForward {
    fn route(&mut self, _now: SimTime, src: NodeId, event: u64, sink: &mut CmdSink<u64>) {
        self.routed += 1;
        let n = self.nodes_per_shard;
        if src.0 == 2 * n {
            // The relay: every fire crosses the cut into shard 1 with a
            // spent hop budget, so the recipient counts it and stops —
            // the relay never reacts to input, which satisfies any
            // positive lookahead vacuously.
            sink.push(NodeId(n + (event as usize % n)), 0);
        } else {
            let budget = event.min(self.hops);
            if budget > 0 {
                let base = if src.0 < n { 0 } else { n };
                sink.push(NodeId(base + (src.0 - base + 1) % n), budget - 1);
            }
        }
    }
}

fn synth_nodes(n: usize, base_period_ns: u64, relay_period_ns: u64) -> Vec<SynthNode> {
    (0..2 * n + 1)
        .map(|k| {
            let period = if k == 2 * n {
                Dur::from_ns(relay_period_ns)
            } else {
                Dur::from_ns(base_period_ns + (k as u64 % 7) * 13)
            };
            SynthNode {
                period,
                next: SimTime::from_ns(period.as_ns()),
                fired: 0,
                handled: 0,
            }
        })
        .collect()
}

/// Builds the two-shard mirror of [`build_ring`] on the conservative
/// parallel harness: shard 0 holds ring nodes `0..n` plus the sync
/// relay (node `2n`), shard 1 holds ring nodes `n..2n`; the relay fires
/// every `relay_period_ns` and each fire is delivered cross-shard.
/// Exercises the full sharded hot path — window negotiation, outbox
/// flush, pending-mail delivery, per-shard stepping — with nothing but
/// `u64` payloads, so `tests/zero_alloc.rs` can pin the sharded
/// steady state at zero allocations too.
pub fn build_sharded_ring(
    n: usize,
    base_period_ns: u64,
    hops: u64,
    relay_period_ns: u64,
    lookahead_ns: u64,
) -> ShardedHarness<SynthNode, ShardForward> {
    assert!(n > 0, "ring needs at least one node");
    let routers = (0..2)
        .map(|_| ShardForward {
            nodes_per_shard: n,
            hops,
            routed: 0,
        })
        .collect();
    let mut h = ShardedHarness::new(routers, DEFAULT_CASCADE_LIMIT, Dur::from_ns(lookahead_ns));
    for (k, node) in synth_nodes(n, base_period_ns, relay_period_ns)
        .into_iter()
        .enumerate()
    {
        let (shard, sync) = if k == 2 * n {
            (0, true)
        } else {
            (k / n, false)
        };
        h.add_node_labeled(node, format!("synth.n{k}"), shard, sync);
    }
    h
}

/// The single-threaded reference for [`build_sharded_ring`]: the same
/// nodes, router rule and registration order on the ordinary
/// [`Harness`], for bit-identity checks.
pub fn build_sharded_ring_reference(
    n: usize,
    base_period_ns: u64,
    hops: u64,
    relay_period_ns: u64,
) -> Harness<SynthNode, ShardForward> {
    assert!(n > 0, "ring needs at least one node");
    let mut h = Harness::with_mode(
        ShardForward {
            nodes_per_shard: n,
            hops,
            routed: 0,
        },
        DEFAULT_CASCADE_LIMIT,
        SchedMode::Indexed,
    );
    for node in synth_nodes(n, base_period_ns, relay_period_ns) {
        h.add_node(node);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_cascades_are_bounded_and_deterministic() {
        let mut h = build_ring(8, 1_000, 3);
        h.run_until(SimTime::from_ns(50_000));
        let total_fired: u64 = (0..8).map(|k| h.node(NodeId(k)).fired()).sum();
        let total_handled: u64 = (0..8).map(|k| h.node(NodeId(k)).handled()).sum();
        assert!(total_fired > 0);
        // Each fire spawns at most `hops` handles around the ring.
        assert!(total_handled <= total_fired * 3);
        assert!(h.router().routed() >= total_fired);
        assert_eq!(h.events(), total_fired + total_handled);

        // Re-running the identical workload is bit-deterministic.
        let mut h2 = build_ring(8, 1_000, 3);
        h2.run_until(SimTime::from_ns(50_000));
        assert_eq!(h2.events(), h.events());
        assert_eq!(h2.router().routed(), h.router().routed());
    }

    #[test]
    fn sharded_ring_matches_the_single_threaded_reference() {
        use crate::shard::WindowMode;
        let horizon = SimTime::from_ns(200_000);
        let mut single = build_sharded_ring_reference(8, 1_000, 3, 2_500);
        single.run_until(horizon);
        assert!(single.node(NodeId(16)).fired() > 0, "relay must fire");
        let relayed: u64 = (8..16).map(|k| single.node(NodeId(k)).handled()).sum();
        assert!(relayed > 0, "cross-shard mail must flow");

        for mode in [WindowMode::FixedLookahead, WindowMode::Adaptive] {
            for threads in [1, 2] {
                let mut sharded = build_sharded_ring(8, 1_000, 3, 2_500, 2_500);
                sharded.set_window_mode(mode);
                sharded.set_threads(threads);
                sharded.run_until(horizon);
                assert_eq!(sharded.events(), single.events(), "{mode:?}/{threads}");
                for k in 0..17 {
                    let (s, r) = (sharded.node(NodeId(k)), single.node(NodeId(k)));
                    assert_eq!(s.fired(), r.fired(), "{mode:?}/{threads} node {k}");
                    assert_eq!(s.handled(), r.handled(), "{mode:?}/{threads} node {k}");
                }
            }
        }
    }
}
