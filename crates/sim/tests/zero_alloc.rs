//! Tier-1 proof of the scheduler's zero-allocation steady state.
//!
//! Runs only under `--features alloc-count`, which swaps in the counting
//! global allocator. The test lives alone in its own integration-test
//! binary so no concurrent test can pollute the process-wide counter.
//!
//! The workload is `ctms_sim::synth::build_ring` — components and router
//! that provably never allocate — so any allocation observed during the
//! measured window belongs to the harness hot path itself.
#![cfg(feature = "alloc-count")]

use ctms_sim::alloc_count::CountingAlloc;
use ctms_sim::SimTime;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn steady_state_scheduler_hot_path_allocates_nothing() {
    let mut h = ctms_sim::synth::build_ring(16, 1_000, 4);

    // Warm-up: let every reusable buffer (wave, due, touched, CmdSink,
    // heap index arrays, per-node sinks) grow to its steady-state
    // capacity.
    h.run_until(SimTime::from_ns(2_000_000));
    let events_before = h.events();
    assert!(events_before > 0, "warm-up must service events");

    // Measured window: many more events, zero allocations.
    let allocs_before = ALLOC.allocations();
    h.run_until(SimTime::from_ns(10_000_000));
    let allocs = ALLOC.allocations() - allocs_before;
    let events = h.events() - events_before;

    assert!(
        events > 10_000,
        "window too small to be meaningful: {events}"
    );
    assert_eq!(
        allocs, 0,
        "steady-state scheduler allocated {allocs} times over {events} events"
    );
}
