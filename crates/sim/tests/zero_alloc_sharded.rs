//! Tier-1 proof of the *sharded* scheduler's zero-allocation steady
//! state, under both window modes and under optimistic execution.
//!
//! Runs only under `--features alloc-count`, which swaps in the counting
//! global allocator. Like `zero_alloc.rs`, this test lives alone in its
//! own integration-test binary: the allocation counter is process-wide,
//! so a concurrently running test would pollute the measured window.
//!
//! The workload is `ctms_sim::synth::build_sharded_ring` — two disjoint
//! ticker rings (one per shard) plus a sync-class relay whose fires
//! cross the shard cut — so the measured window exercises window
//! negotiation, outbox flushing and pending-mail delivery, not just the
//! per-shard stepping loop.
#![cfg(feature = "alloc-count")]

use ctms_sim::alloc_count::CountingAlloc;
use ctms_sim::SimTime;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn steady_state_sharded_hot_path_allocates_nothing() {
    // Two shards on one thread (the inline dispatch path — worker
    // threads have their own stacks and queues, which would charge
    // pool machinery, not the scheduler, to the counter), with live
    // cross-shard mail every relay period, under both window modes.
    for mode in [
        ctms_sim::WindowMode::FixedLookahead,
        ctms_sim::WindowMode::Adaptive,
    ] {
        let mut h = ctms_sim::synth::build_sharded_ring(16, 1_000, 4, 2_500, 2_500);
        h.set_window_mode(mode);
        h.set_threads(1);
        // Nothing influences shard 0 (the cut is one-way), so without a
        // span cap its adaptive window would run clear to the horizon
        // and its outbox would grow with the run length — the cap keeps
        // mailbox memory (and hence steady-state capacity) bounded.
        h.set_max_window_span(ctms_sim::Dur::from_ns(250_000));

        // Warm-up: grow every reusable buffer — per-shard heaps, waves,
        // sinks, outboxes, pending-mail queues, the coordinator's bound
        // scratch — to steady-state capacity.
        h.run_until(SimTime::from_ns(2_000_000));
        let events_before = h.events();
        assert!(events_before > 0, "warm-up must service events");

        // Measured window: many more events and windows, zero allocations.
        let allocs_before = ALLOC.allocations();
        h.run_until(SimTime::from_ns(10_000_000));
        let allocs = ALLOC.allocations() - allocs_before;
        let events = h.events() - events_before;

        assert!(
            events > 10_000,
            "window too small to be meaningful: {events} ({mode:?})"
        );
        assert_eq!(
            allocs, 0,
            "steady-state sharded scheduler ({mode:?}) allocated {allocs} times \
             over {events} events"
        );
    }
}

#[test]
fn steady_state_optimistic_hot_path_allocates_nothing() {
    // The optimistic engine adds three reusable buffers to the hot
    // path on top of the conservative scheduler: the pre-image
    // snapshot arena, the executed-event log, and the staged
    // speculative outbox. All three are trimmed back with
    // capacity-preserving truncation (`go_live` / fossil collection
    // clear lengths, never capacity), so once the warm-up has grown
    // them to the high-water mark of one speculation round, the steady
    // state allocates nothing — including at snapshot-cadence
    // boundaries, where opening a segment only appends into the
    // already-sized arena. Only a run whose speculation depth exceeds
    // anything seen during warm-up may allocate, and that is a
    // capacity growth event, not a steady-state cost.
    let mut h = ctms_sim::synth::build_sharded_ring(16, 1_000, 4, 2_500, 2_500);
    h.set_window_mode(ctms_sim::WindowMode::Adaptive);
    h.set_exec_mode(ctms_sim::ExecMode::Optimistic);
    h.set_snapshot_cadence(64);
    h.set_threads(1);
    h.set_max_window_span(ctms_sim::Dur::from_ns(250_000));

    h.run_until(SimTime::from_ns(2_000_000));
    let events_before = h.events();
    assert!(events_before > 0, "warm-up must service events");

    let allocs_before = ALLOC.allocations();
    h.run_until(SimTime::from_ns(10_000_000));
    let allocs = ALLOC.allocations() - allocs_before;
    let events = h.events() - events_before;

    assert!(
        events > 10_000,
        "window too small to be meaningful: {events}"
    );
    assert_eq!(
        allocs, 0,
        "steady-state optimistic scheduler allocated {allocs} times over \
         {events} events"
    );
}
